module Relational = Repair_relational
module Fd = Repair_fd
module Graph = Repair_graph
module Sat = Repair_sat
module Srepair = Repair_srepair
module Urepair = Repair_urepair
module Dichotomy = Repair_dichotomy
module Mpd = Repair_mpd
module Reductions = Repair_reductions
module Workload = Repair_workload
module Enumerate = Repair_enumerate
module Cfd = Repair_cfd
module Denial = Repair_denial
module Mixed = Repair_mixed
module Cqa = Repair_cqa
module Prioritized = Repair_prioritized
module Cleaning = Repair_cleaning
module Runtime = Repair_runtime
module Obs = Repair_obs

module Par = Repair_par
module Stream = Repair_stream

module Driver = struct
  open Repair_relational
  open Repair_fd
  module Budget = Repair_runtime.Budget
  module Repair_error = Repair_runtime.Repair_error
  module Pool = Repair_par.Pool

  let src = Logs.Src.create "repair.driver" ~doc:"algorithm selection"

  module Log = (val Logs.src_log src : Logs.LOG)

  type strategy = Auto | Poly | Exact | Approximate

  type on_budget = [ `Fail | `Degrade ]

  type report = {
    result : Table.t;
    distance : float;
    optimal : bool;
    ratio : float;
    method_used : string;
    degraded : bool;
    fallbacks : string list;
  }

  let exact_size_limit = 64

  let s_poly_name = "OptSRepair (Algorithm 1)"

  let s_exact_name = "exact minimum-weight vertex cover (baseline)"

  let s_approx_name = "Bar-Yehuda–Even 2-approximation (Proposition 3.3)"

  let u_poly_name = "tractable-case solver (Section 4)"

  let u_exact_name = "bounded exhaustive search (baseline)"

  let u_approx_name =
    "combined per-component approximation (Theorems 4.1/4.3/4.12)"

  (* One rung of the degradation ladder: run [f]; when it dies of a
     degradable error (budget exhausted, size gate, injected fault) and the
     policy allows, run the certified fallback instead and record the edge.
     The fallback is polynomial and runs unbudgeted — the engine always
     returns a consistent repair under `Degrade. *)
  let rung ~on_budget ~degraded ~fallbacks ~name ~fallback:(alt_name, alt) f =
    try f () with
    | Repair_error.Error e
      when on_budget = `Degrade && Repair_error.is_degradable e ->
      degraded := true;
      fallbacks :=
        Fmt.str "%s failed (%s) → %s" name (Repair_error.class_name e) alt_name
        :: !fallbacks;
      Log.info (fun m ->
          m "degrading: %s — %a; falling back to %s" name Repair_error.pp e
            alt_name);
      alt ()

  let s_report tbl result ~optimal ~ratio ~method_used =
    {
      result;
      distance = Table.dist_sub result tbl;
      optimal;
      ratio;
      method_used;
      degraded = false;
      fallbacks = [];
    }

  let s_repair_result ?pool ?(strategy = Auto) ?(budget = Budget.unlimited ())
      ?(on_budget = `Degrade) d tbl =
    let degraded = ref false and fallbacks = ref [] in
    let runner = Option.map Pool.runner pool in
    let poly () =
      let solved =
        match runner with
        | Some runner -> Repair_srepair.Opt_s_repair.run_par ~budget runner d tbl
        | None -> Repair_srepair.Opt_s_repair.run ~budget d tbl
      in
      match solved with
      | Ok s -> s_report tbl s ~optimal:true ~ratio:1.0 ~method_used:s_poly_name
      | Error stuck ->
        Repair_error.raise_error
          (Intractable
             {
               what = "OptSRepair";
               detail =
                 Fmt.str "no simplification applies to %a" Fd_set.pp stuck;
             })
    in
    let exact () =
      s_report tbl
        (Repair_srepair.S_exact.optimal ~budget d tbl)
        ~optimal:true ~ratio:1.0 ~method_used:s_exact_name
    in
    let approx () =
      let s =
        match runner with
        | Some runner -> Repair_srepair.S_approx.approx2_par runner d tbl
        | None -> Repair_srepair.S_approx.approx2 d tbl
      in
      s_report tbl s ~optimal:false ~ratio:2.0 ~method_used:s_approx_name
    in
    let rung name f =
      rung ~on_budget ~degraded ~fallbacks ~name
        ~fallback:(s_approx_name, approx) f
    in
    Repair_error.guard (fun () ->
        let r =
          match strategy with
          | Poly -> rung s_poly_name poly
          | Exact -> rung s_exact_name exact
          | Approximate -> approx ()
          | Auto ->
            if Repair_dichotomy.Simplify.succeeds d then begin
              Log.debug (fun m -> m "s-repair: OSRSucceeds — Algorithm 1");
              rung s_poly_name poly
            end
            else if Table.size tbl <= exact_size_limit then begin
              Log.debug (fun m ->
                  m "s-repair: hard Δ, n=%d small — exact baseline"
                    (Table.size tbl));
              rung s_exact_name exact
            end
            else begin
              Log.debug (fun m ->
                  m "s-repair: hard Δ at scale — 2-approximation");
              approx ()
            end
        in
        { r with degraded = !degraded; fallbacks = List.rev !fallbacks })

  let raise_report = function
    | Ok r -> r
    | Error (Repair_error.Intractable { what; detail }) ->
      (* Compatibility: the historic driver raised [Failure] when a
         polynomial algorithm was requested on the hard side. *)
      failwith (Fmt.str "%s failed: %s" what detail)
    | Error e -> Repair_error.raise_error e

  let s_repair ?pool ?strategy ?budget ?on_budget d tbl =
    raise_report (s_repair_result ?pool ?strategy ?budget ?on_budget d tbl)

  let u_report tbl result ~optimal ~ratio ~method_used =
    {
      result;
      distance = Table.dist_upd result tbl;
      optimal;
      ratio;
      method_used;
      degraded = false;
      fallbacks = [];
    }

  let u_repair_result ?pool ?(strategy = Auto) ?(budget = Budget.unlimited ())
      ?(on_budget = `Degrade) d tbl =
    let degraded = ref false and fallbacks = ref [] in
    let runner = Option.map Pool.runner pool in
    let poly () =
      let solved =
        match runner with
        | Some runner ->
          Repair_urepair.Opt_u_repair.solve_par ~budget runner d tbl
        | None -> Repair_urepair.Opt_u_repair.solve ~budget d tbl
      in
      match solved with
      | Ok u -> u_report tbl u ~optimal:true ~ratio:1.0 ~method_used:u_poly_name
      | Error f ->
        Repair_error.raise_error
          (Intractable
             {
               what = "Opt_u_repair";
               detail = Fmt.str "%a" Repair_urepair.Opt_u_repair.pp_failure f;
             })
    in
    let exact () =
      u_report tbl
        (Repair_urepair.U_exact.optimal ~budget d tbl)
        ~optimal:true ~ratio:1.0 ~method_used:u_exact_name
    in
    let approx () =
      let u, ratio = Repair_urepair.U_approx.best d tbl in
      u_report tbl u ~optimal:(ratio = 1.0) ~ratio ~method_used:u_approx_name
    in
    let rung name f =
      rung ~on_budget ~degraded ~fallbacks ~name
        ~fallback:(u_approx_name, approx) f
    in
    Repair_error.guard (fun () ->
        let r =
          match strategy with
          | Poly -> rung u_poly_name poly
          | Exact -> rung u_exact_name exact
          | Approximate -> approx ()
          | Auto ->
            if Repair_urepair.Opt_u_repair.tractable d then begin
              Log.debug (fun m -> m "u-repair: Section-4 tractable case");
              rung u_poly_name poly
            end
            else if
              Table.size tbl * Schema.arity (Table.schema tbl) <= 18
            then begin
              Log.debug (fun m ->
                  m "u-repair: exhaustive search on tiny instance");
              rung u_exact_name exact
            end
            else begin
              Log.debug (fun m ->
                  m "u-repair: certified combined approximation");
              approx ()
            end
        in
        { r with degraded = !degraded; fallbacks = List.rev !fallbacks })

  let u_repair ?pool ?strategy ?budget ?on_budget d tbl =
    raise_report (u_repair_result ?pool ?strategy ?budget ?on_budget d tbl)

  let s_repair_database ?strategy ?budget ?on_budget constraints db =
    let total = ref 0.0 in
    let repaired =
      Database.map db (fun name tbl ->
          match List.assoc_opt name constraints with
          | None -> tbl
          | Some d ->
            let r = s_repair ?strategy ?budget ?on_budget d tbl in
            total := !total +. r.distance;
            r.result)
    in
    (repaired, !total)

  let describe d =
    let module Simplify = Repair_dichotomy.Simplify in
    let module Classify = Repair_dichotomy.Classify in
    let buf = Buffer.create 256 in
    let ppf = Fmt.with_buffer buf in
    Fmt.pf ppf "Δ = %a@." Fd_set.pp d;
    (match Classify.classify d with
    | `Tractable trace ->
      Fmt.pf ppf
        "Optimal S-repair: polynomial time (OSRSucceeds holds).@.%a@."
        Simplify.pp_trace (d, trace)
    | `Hard (stuck, trace, cert) ->
      Fmt.pf ppf
        "Optimal S-repair: APX-complete (OSRSucceeds fails).@.%a@.Stuck \
         set: %a@.Certificate: %a@."
        Simplify.pp_trace (d, trace) Fd_set.pp stuck Classify.pp_certificate
        cert);
    (match Repair_urepair.Opt_u_repair.diagnose d with
    | None ->
      Fmt.pf ppf "Optimal U-repair: polynomial time (Section 4 cases).@."
    | Some f ->
      Fmt.pf ppf "Optimal U-repair: not known tractable — %a@."
        Repair_urepair.Opt_u_repair.pp_failure f);
    let d' = Fd_set.normalize d in
    if not (Fd_set.is_empty d') then begin
      Fmt.pf ppf
        "U-repair approximation ratios: ours (Thm 4.12, per-component) = \
         %g; Kolahi–Lakshmanan (Thm 4.13) = %d (MFS=%d, MCI=%d).@."
        (Repair_urepair.U_approx.certified_ratio d)
        (Lhs_analysis.kl_ratio d') (Lhs_analysis.mfs d')
        (Lhs_analysis.mci d')
    end;
    Fmt.flush ppf ();
    Buffer.contents buf
end

module Batch = struct
  module Manifest = Repair_batch.Manifest
  module Journal = Repair_batch.Journal
  module Runner = Repair_batch.Runner
  module Budget = Repair_runtime.Budget
  module Repair_error = Repair_runtime.Repair_error
  open Repair_relational

  let is_jsonl path = Filename.check_suffix path ".jsonl"

  let load_table path =
    if is_jsonl path then Jsonl_io.load ~name:"T" path
    else Csv_io.load ~name:"T" path

  let save_table tbl path =
    if is_jsonl path then Jsonl_io.save tbl path else Csv_io.save tbl path

  (* The Driver-backed executor the CLI uses. Raises Repair_error.Error
     for everything the runner should isolate: a bad FD string or input
     file makes the job poison, a per-job budget under `Fail surfaces as
     a transient failure the runner may retry. *)
  let exec_job (job : Manifest.job) : Runner.outcome =
    let d =
      try Repair_fd.Fd_set.parse job.fds
      with Failure m ->
        Repair_error.raise_error
          (Parse
             { source = Fmt.str "<fds:%s>" job.id; line = None; detail = m })
    in
    let tbl = load_table job.input in
    let strategy =
      match job.strategy with
      | Manifest.Auto -> Driver.Auto
      | Manifest.Poly -> Driver.Poly
      | Manifest.Exact -> Driver.Exact
      | Manifest.Approximate -> Driver.Approximate
    in
    let budget =
      match (job.timeout_s, job.max_steps) with
      | None, None -> None
      | timeout_s, max_steps -> Some (Budget.create ?timeout_s ?max_steps ())
    in
    let result =
      match job.kind with
      | Manifest.S_repair ->
        Driver.s_repair_result ~strategy ?budget ~on_budget:job.on_budget d
          tbl
      | Manifest.U_repair ->
        Driver.u_repair_result ~strategy ?budget ~on_budget:job.on_budget d
          tbl
    in
    match result with
    | Error e -> Repair_error.raise_error e
    | Ok r ->
      Option.iter (save_table r.result) job.output;
      {
        Runner.status = (if r.degraded then `Degraded else `Ok);
        distance = r.distance;
        method_used = r.method_used;
      }

  let run ?pool ?retries ?backoff_ms ?resume ~journal manifest =
    Runner.run ?pool ?retries ?backoff_ms ?resume ~exec:exec_job ~journal
      manifest
end

module Serve = struct
  module Protocol = Repair_serve.Protocol
  module Cache = Repair_serve.Cache
  module Engine = Repair_serve.Engine
  module Server = Repair_serve.Server
  module Budget = Repair_runtime.Budget
  module Repair_error = Repair_runtime.Repair_error
  open Repair_relational
  open Repair_fd
  module Json = Repair_obs.Json

  type warm = {
    fds : Fd_set.t;
    normalized : Fd_set.t;
    s_tractable : bool;
    u_tractable : bool;
    describe : string Lazy.t;
  }

  let default_cache_capacity = 128

  let make_cache ?(capacity = default_cache_capacity) () : (string, warm) Cache.t =
    Cache.create ~name:"serve.fd-cache" ~capacity

  (* Key: the raw FD string — the request's "schema". The warm value
     carries everything derivable from the FD set alone: the parsed and
     normalized sets, both dichotomy verdicts, and (lazily, for the
     classify op) the full complexity report. A parse failure is raised,
     never cached — see Cache.find_or_add. *)
  let lookup cache fds_text =
    Cache.find_or_add cache fds_text (fun () ->
        let d =
          try Fd_set.parse fds_text
          with Failure m ->
            Repair_error.raise_error
              (Parse { source = "<fds>"; line = None; detail = m })
        in
        {
          fds = d;
          normalized = Fd_set.normalize d;
          s_tractable = Repair_dichotomy.Simplify.succeeds d;
          u_tractable = Repair_urepair.Opt_u_repair.tractable d;
          describe = lazy (Driver.describe d);
        })

  (* Streaming sessions (DESIGN §16): per-connection state, keyed by
     the engine's connection cookie. A bounded LRU caps resident
     sessions (counters stream.sessions.hit/.miss/.evict); a mutex
     serializes session
     access because pool worker domains may execute two stream requests
     concurrently. A stream request with a nonempty table (re)builds the
     connection's session from it; with an empty table it continues the
     existing one (same FD text required — a mismatch is a structured
     parse reject). *)
  type session_slot = { fds_text : string; session : Repair_stream.Session.t }

  let default_session_capacity = 64

  let make_sessions ?(capacity = default_session_capacity) () :
      (int, session_slot) Cache.t =
    Cache.create ~name:"stream.sessions" ~capacity

  let parse_table (req : Protocol.request) =
    match req.format with
    | Protocol.Csv -> Csv_io.parse_string ~file:"<request>" ~name:"T" req.table
    | Protocol.Jsonl ->
      Jsonl_io.parse_string ~file:"<request>" ~name:"T" req.table

  let render_table (req : Protocol.request) tbl =
    match req.format with
    | Protocol.Csv -> Csv_io.to_string tbl
    | Protocol.Jsonl -> Jsonl_io.to_string tbl

  let strategy_of = function
    | Protocol.Auto -> Driver.Auto
    | Protocol.Poly -> Driver.Poly
    | Protocol.Exact -> Driver.Exact
    | Protocol.Approximate -> Driver.Approximate

  let stream_exec ~cache ~sessions ~mutex ~conn (req : Protocol.request) =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) @@ fun () ->
    let warm = lookup cache req.fds in
    let session =
      match Cache.find sessions conn with
      | Some slot when slot.fds_text = req.fds && req.table = "" ->
        slot.session
      | _ ->
        let base =
          if req.table = "" then
            Repair_error.raise_error
              (Parse
                 {
                   source = "<request>";
                   line = None;
                   detail =
                     "stream: no live session for this connection (or the \
                      FD set changed); send a \"table\" to initialize one";
                 })
          else parse_table req
        in
        let session = Repair_stream.Session.create warm.fds base in
        Cache.add sessions conn { fds_text = req.fds; session };
        session
    in
    (* Apply the delta lines in order. The first malformed or
       inapplicable line stops the batch with a structured reject; the
       valid prefix stays applied and the session remains live. *)
    let lines = String.split_on_char '\n' req.deltas in
    let applied = ref 0 in
    List.iteri
      (fun i line ->
        if String.trim line <> "" then begin
          let d = Repair_stream.Delta.parse ~line:(i + 1) line in
          Repair_stream.Session.tick session d;
          incr applied
        end)
      lines;
    let r = Repair_stream.Session.summary session in
    let st = Repair_stream.Session.stats session in
    [ ("distance", Json.Float r.Repair_stream.Session.distance);
      ("method", Json.String r.Repair_stream.Session.method_used);
      ("optimal", Json.Bool r.Repair_stream.Session.optimal);
      ("ratio", Json.Float r.Repair_stream.Session.ratio);
      ("degraded", Json.Bool false);
      ("fallbacks", Json.List []);
      ("table", Json.String (render_table req r.Repair_stream.Session.result));
      ("applied", Json.Int !applied);
      ("ticks", Json.Int st.Repair_stream.Session.ticks);
      ("rows", Json.Int st.Repair_stream.Session.live) ]

  let exec ~cache ~sessions ~mutex ~conn ~degraded ~budget
      (req : Protocol.request) =
    match req.Protocol.op with
    | Protocol.Classify ->
      let warm = lookup cache req.fds in
      [ ("report", Json.String (Lazy.force warm.describe));
        ("s_tractable", Json.Bool warm.s_tractable);
        ("u_tractable", Json.Bool warm.u_tractable) ]
    | Protocol.S_repair | Protocol.U_repair ->
      let warm = lookup cache req.fds in
      let tbl = parse_table req in
      (* The overload downgrade: a request admitted above the degrade
         watermark skips straight to the bottom rung of the ladder — the
         certified polynomial approximation — whatever it asked for. *)
      let strategy =
        if degraded then Driver.Approximate else strategy_of req.strategy
      in
      let solve =
        match req.Protocol.op with
        | Protocol.S_repair -> Driver.s_repair_result
        | _ -> Driver.u_repair_result
      in
      (match solve ~strategy ~budget ~on_budget:`Degrade warm.fds tbl with
      | Error e -> Repair_error.raise_error e
      | Ok r ->
        [ ("distance", Json.Float r.Driver.distance);
          ("method", Json.String r.Driver.method_used);
          ("optimal", Json.Bool r.Driver.optimal);
          ("ratio", Json.Float r.Driver.ratio);
          ("degraded", Json.Bool r.Driver.degraded);
          ( "fallbacks",
            Json.List (List.map (fun f -> Json.String f) r.Driver.fallbacks) );
          ("table", Json.String (render_table req r.Driver.result)) ])
    | Protocol.Stream ->
      (* Streaming sessions run under unlimited budgets (the identity
         contract with a cold recompute leaves no room for exhaustion
         points); admission control still queues and sheds them. *)
      ignore budget;
      stream_exec ~cache ~sessions ~mutex ~conn req
    | Protocol.Ping | Protocol.Metrics | Protocol.Stats
    | Protocol.Invalidate_cache | Protocol.Drain ->
      (* Control ops are answered by the engine and never reach an
         executor. *)
      invalid_arg "Serve.exec: control op"

  let run ?config ?cache_capacity ?metrics_out ?slow_log ?trace_out
      ?(domains = 1) listen =
    let cache = make_cache ?capacity:cache_capacity () in
    let sessions = make_sessions () in
    let mutex = Mutex.create () in
    let serve ?pool () =
      Server.run ?config ?metrics_out ?slow_log ?trace_out ?pool
        ~on_invalidate:(fun () -> Cache.clear cache + Cache.clear sessions)
        ~exec:(fun ~conn ~degraded ~budget req ->
          exec ~cache ~sessions ~mutex ~conn ~degraded ~budget req)
        listen
    in
    if domains <= 1 then serve ()
    else
      Repair_par.Pool.with_pool ~domains (fun pool -> serve ~pool ())
end
