(* Incremental streaming repair (DESIGN §16): keep a repair current under
   tuple inserts/deletes at O(affected-group) cost per tick, with a
   summary that is byte-identical — report, distances, rendered tables,
   and integer metrics (modulo the stream.* counters) — to a from-scratch
   driver run on the materialized table.

   The working table [work] owns its store tip: it is copied from the
   base exactly once at [create] and then grows only by tip appends
   (ids strictly increase, so [Table.add] is an O(1) push and never
   rebuilds the store). Deletes are tombstoned positions applied at
   summary time (materializing is O(n), so it runs once per summary,
   never per tick). Every block sub-view, cached block repair, and the
   materialized table are views over this one store — which is what
   makes [Table.union]'s same-store merge fast path and byte-identical
   rendering possible.

   Soundness of block locality: the first OptSRepair simplification
   partitions the table on a fixed attribute set (common-lhs attribute,
   consensus rhs, or marriage X1∪X2), and blocks never interact below
   the top-level combine. An insert or delete therefore perturbs exactly
   one block — re-solve it, reuse every other block's cached result
   verbatim. The hard side of the dichotomy has no such decomposition
   (minimum vertex cover is global), so hard sessions maintain the
   conflict graph incrementally instead and re-run the cover per
   summary. *)

open Repair_relational
open Repair_fd
open Repair_runtime
module Metrics = Repair_obs.Metrics
module Cache = Repair_serve.Cache
module Cg = Repair_srepair.Conflict_graph
module Osr = Repair_srepair.Opt_s_repair
module Vc = Repair_graph.Vertex_cover
module Iset = Set.Make (Int)

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

module Ttbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* The driver's Auto ladder, replicated. [Driver] lives above this
   library (lib/core aggregates it), so the constants are duplicated
   here; test_stream asserts they stay equal to the driver's. *)
let exact_size_limit = 64
let poly_method = "OptSRepair (Algorithm 1)"
let exact_method = "exact minimum-weight vertex cover (baseline)"
let approx_method = "Bar-Yehuda–Even 2-approximation (Proposition 3.3)"

type kind = Common_lhs | Consensus | Marriage of Attr_set.t * Attr_set.t

type poly = {
  part : Attr_set.t; (* top-level partition attributes *)
  kind : kind;
  smaller : Fd_set.t; (* residual FD set inside a block *)
}

type mode = Trivial | Poly of poly | Hard of Cg.Incremental.t

(* A cached block result: the repair (a view over the session store),
   the metrics captured while solving it, and the budget steps it spent.
   Summaries replay capture and steps in block order — the same
   absorb-at-the-barrier contract Opt_s_repair.solve_par uses — so
   integer metrics come out equal to an inline solve. *)
type entry = {
  e_repair : Table.t;
  e_captured : Metrics.captured;
  e_steps : int;
}

type t = {
  delta : Fd_set.t;
  dt : Fd_set.t; (* remove_trivial delta *)
  salt : string; (* schema + FD text: the cache-key prefix *)
  schema : Schema.t;
  mode : mode;
  mutable work : Table.t;
  mutable dead : Iset.t; (* tombstoned positions of [work] *)
  pos_of_id : (Table.id, int) Hashtbl.t; (* live ids only *)
  mutable blocks : Iset.t Tmap.t; (* Poly: partition key -> alive positions *)
  dig : string Ttbl.t; (* memoized block-cache keys; dropped on any
                          membership change, so a stale digest can
                          never survive a churned block *)
  bcache : (string, entry) Cache.t;
  mutable ticks : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable rejects : int;
  mutable summaries : int;
}

let err detail =
  Repair_error.raise_error (Parse { source = "<delta>"; line = None; detail })

let default_cache_capacity = 512

let create ?(cache_capacity = default_cache_capacity) d base =
  let schema = Table.schema base in
  let n = Table.size base in
  (* Copy the base into a store this session owns the tip of: appends
     stay O(1) pushes and every view shares the one store. Seeding by
     tip appends (rather than [Table.Builder], which trims capacity to
     exactly [n]) leaves the store with doubling headroom, so the first
     streamed insert is a plain push instead of a full-store copy. *)
  let work = ref (Table.empty schema) in
  for pos = 0 to n - 1 do
    work :=
      Table.add ~id:(Table.View.id base pos)
        ~weight:(Table.View.weight base pos) !work (Table.View.tuple base pos)
  done;
  let work = !work in
  let dt = Fd_set.remove_trivial d in
  let mode =
    if Fd_set.is_empty dt then Trivial
    else if not (Repair_dichotomy.Simplify.succeeds d) then
      Hard (Cg.Incremental.of_table d work)
    else
      match Fd_set.common_lhs dt with
      | Some a ->
        let part = Attr_set.singleton a in
        Poly { part; kind = Common_lhs; smaller = Fd_set.minus dt part }
      | None -> (
        match Fd_set.consensus_fd dt with
        | Some fd ->
          let part = Fd.rhs fd in
          Poly { part; kind = Consensus; smaller = Fd_set.minus dt part }
        | None -> (
          match Fd_set.lhs_marriage dt with
          | Some (x1, x2) ->
            let part = Attr_set.union x1 x2 in
            Poly { part; kind = Marriage (x1, x2); smaller = Fd_set.minus dt part }
          | None ->
            (* Simplify.succeeds said the chain completes. *)
            assert false))
  in
  let t =
    {
      delta = d;
      dt;
      salt = Fmt.str "%a|%a" Schema.pp schema Fd_set.pp d;
      schema;
      mode;
      work;
      dead = Iset.empty;
      pos_of_id = Hashtbl.create (max 16 (2 * n));
      blocks = Tmap.empty;
      dig = Ttbl.create 64;
      bcache = Cache.create ~name:"stream.block-cache" ~capacity:cache_capacity;
      ticks = 0;
      inserts = 0;
      deletes = 0;
      rejects = 0;
      summaries = 0;
    }
  in
  for pos = 0 to n - 1 do
    Hashtbl.replace t.pos_of_id (Table.View.id work pos) pos
  done;
  (match t.mode with
  | Poly p ->
    for pos = 0 to n - 1 do
      let key = Tuple.project schema (Table.View.tuple work pos) p.part in
      t.blocks <-
        Tmap.update key
          (function
            | None -> Some (Iset.singleton pos) | Some s -> Some (Iset.add pos s))
          t.blocks
    done
  | Trivial | Hard _ -> ());
  t

let fds t = t.delta
let schema t = t.schema
let size t = Table.size t.work - Iset.cardinal t.dead

let last_id t =
  let n = Table.size t.work in
  if n = 0 then min_int else Table.View.id t.work (n - 1)

(* Block-cache key: (schema hash, group key, member-id slice). The
   member-id slice is load-bearing — any membership change (insert OR
   delete) yields a fresh key, so a delete in one group can never serve
   a stale cached block, and an undone insert legitimately re-hits the
   old slice's entry (ids are never reused, tuples are immutable). *)
let block_key t key members =
  match Ttbl.find_opt t.dig key with
  | Some d -> d
  | None ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf t.salt;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf (Tuple.to_string key);
    Buffer.add_char buf '\x00';
    Iset.iter
      (fun pos ->
        Buffer.add_string buf (string_of_int (Table.View.id t.work pos));
        Buffer.add_char buf ',')
      members;
    let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
    Ttbl.replace t.dig key d;
    d

(* Solve one block under the residual FD set, under Metrics.capture with
   a fresh unlimited budget — exactly what a solve_par worker task does.
   The captured registry and spent steps go into the cache entry so
   summaries can replay them. *)
let solve_entry t p key members =
  let bk = block_key t key members in
  match Cache.find t.bcache bk with
  | Some e -> e
  | None -> (
    Metrics.incr "stream.block-solves";
    let sub =
      let arr = Array.make (Iset.cardinal members) 0 in
      let k = ref 0 in
      Iset.iter
        (fun pos ->
          Array.unsafe_set arr !k pos;
          incr k)
        members;
      Table.View.of_positions t.work arr
    in
    let res, captured =
      Metrics.capture (fun () ->
          let b = Budget.unlimited () in
          let s = Osr.solve_block ~budget:b p.smaller sub in
          (s, Budget.steps b))
    in
    match res with
    | Ok (s, steps) ->
      let e = { e_repair = s; e_captured = captured; e_steps = steps } in
      Cache.add t.bcache bk e;
      e
    | Error exn -> raise exn)

let apply_insert t ~id ~weight values =
  let arity = List.length values in
  if arity <> Schema.arity t.schema then
    err
      (Printf.sprintf "insert arity %d does not match schema arity %d" arity
         (Schema.arity t.schema));
  if weight <= 0.0 then err "insert weight must be positive";
  (match id with
  | Some i when i <= last_id t ->
    err
      (Printf.sprintf
         "insert id %d must exceed every id seen (last is %d); ids are never \
          reused"
         i (last_id t))
  | _ -> ());
  let tuple = Tuple.make values in
  let pos = Table.size t.work in
  t.work <- Table.add ?id ~weight t.work tuple;
  let id = Table.View.id t.work pos in
  Hashtbl.replace t.pos_of_id id pos;
  t.inserts <- t.inserts + 1;
  Metrics.incr "stream.inserts";
  match t.mode with
  | Trivial -> ()
  | Hard cg -> Cg.Incremental.insert cg ~id ~weight tuple
  | Poly p ->
    let key = Tuple.project t.schema tuple p.part in
    let members =
      Iset.add pos
        (match Tmap.find_opt key t.blocks with
        | Some s -> s
        | None -> Iset.empty)
    in
    t.blocks <- Tmap.add key members t.blocks;
    Ttbl.remove t.dig key;
    Metrics.incr "stream.dirty-blocks";
    Metrics.incr ~by:(Tmap.cardinal t.blocks) "stream.blocks"

let apply_delete t id =
  match Hashtbl.find_opt t.pos_of_id id with
  | None -> err (Printf.sprintf "delete of unknown or already-deleted id %d" id)
  | Some pos -> (
    Hashtbl.remove t.pos_of_id id;
    t.dead <- Iset.add pos t.dead;
    t.deletes <- t.deletes + 1;
    Metrics.incr "stream.deletes";
    match t.mode with
    | Trivial -> ()
    | Hard cg -> Cg.Incremental.delete cg id
    | Poly p ->
      let key = Tuple.project t.schema (Table.View.tuple t.work pos) p.part in
      let members = Iset.remove pos (Tmap.find key t.blocks) in
      Ttbl.remove t.dig key;
      if Iset.is_empty members then t.blocks <- Tmap.remove key t.blocks
      else begin
        t.blocks <- Tmap.add key members t.blocks;
        Metrics.incr "stream.dirty-blocks";
        Metrics.incr ~by:(Tmap.cardinal t.blocks) "stream.blocks"
      end)

let tick t (d : Delta.t) =
  match
    match d with
    | Delta.Insert { id; weight; values } -> apply_insert t ~id ~weight values
    | Delta.Delete { id } -> apply_delete t id
  with
  | () ->
    t.ticks <- t.ticks + 1;
    Metrics.incr "stream.ticks"
  | exception e ->
    t.rejects <- t.rejects + 1;
    Metrics.incr "stream.rejects";
    raise e

(* Same table [Table.remove] would produce — [work]'s view is [All], so
   visible positions are row indices and dropping the tombstoned ones in
   ascending order is exactly the select — without the per-row hashtable
   probe. *)
let materialized t =
  if Iset.is_empty t.dead then t.work
  else begin
    let n = Table.size t.work in
    let dead = Bytes.make n '\000' in
    Iset.iter (fun pos -> Bytes.set dead pos '\001') t.dead;
    let live = Array.make (n - Iset.cardinal t.dead) 0 in
    let m = ref 0 in
    for pos = 0 to n - 1 do
      if Bytes.unsafe_get dead pos = '\000' then begin
        Array.unsafe_set live !m pos;
        incr m
      end
    done;
    Table.View.of_positions t.work live
  end

type report = {
  result : Table.t;
  distance : float;
  optimal : bool;
  ratio : float;
  method_used : string;
}

(* The top-level combine, replicating the batch solve's structure on the
   cached blocks. Tmap.bindings iterates keys in Tuple.compare order —
   the same order Table.group_by sorts its groups — and every alive
   position is in exactly one block, so the blocks here are the blocks a
   cold group_by on the materialized table would produce, in the same
   order, viewing the same store positions. *)
let combine t p budget =
  let use key members =
    let e = solve_entry t p key members in
    Metrics.merge e.e_captured;
    Budget.absorb budget ~steps:e.e_steps;
    e.e_repair
  in
  let blocks = Tmap.bindings t.blocks in
  match p.kind with
  | Common_lhs ->
    (* Equivalent to folding same-store [Table.union] over the blocks —
       that merge only id-sorts the kept rows — but built in one pass.
       Session store positions are in id order (create seeds them from
       the base's id-ordered view and inserts only append with larger
       ids), so marking kept positions in a bitmap and scanning it
       ascending produces exactly the id-sorted merge the fold would.
       Kept positions per block come from matching the block repair's
       (ascending) ids against the block's (ascending-by-id) member
       positions — no hashing, one pass per block. *)
    let n_store = Table.size t.work in
    let keep = Bytes.make n_store '\000' in
    let total = ref 0 in
    List.iter
      (fun (key, members) ->
        let r = use key members in
        let ids = Table.View.ids_array r in
        let n_ids = Array.length ids in
        total := !total + n_ids;
        let j = ref 0 in
        Iset.iter
          (fun pos ->
            if !j < n_ids && Table.View.id t.work pos = Array.unsafe_get ids !j
            then begin
              Bytes.unsafe_set keep pos '\001';
              incr j
            end)
          members)
      blocks;
    let kept = Array.make !total 0 in
    let m = ref 0 in
    for pos = 0 to n_store - 1 do
      if Bytes.unsafe_get keep pos = '\001' then begin
        Array.unsafe_set kept !m pos;
        incr m
      end
    done;
    Table.View.of_positions t.work kept
  | Consensus -> (
    match blocks with
    | [] -> assert false (* caller guarantees a nonempty table *)
    | (k0, m0) :: rest ->
      List.fold_left
        (fun best (k, ms) ->
          let s = use k ms in
          if Table.total_weight s > Table.total_weight best then s else best)
        (use k0 m0) rest)
  | Marriage (x1, x2) ->
    let bl =
      List.map
        (fun (key, members) ->
          let witness = Table.View.tuple t.work (Iset.min_elt members) in
          ( Tuple.project t.schema witness x1,
            Tuple.project t.schema witness x2,
            use key members ))
        blocks
    in
    Osr.marriage_combine t.schema bl

let summary t =
  t.summaries <- t.summaries + 1;
  Metrics.incr "stream.summaries";
  let m = materialized t in
  let budget = Budget.unlimited () in
  let finish ~optimal ~ratio ~method_used result =
    { result; distance = Table.dist_sub result m; optimal; ratio; method_used }
  in
  match t.mode with
  | Trivial ->
    let result =
      Metrics.with_span "opt-s-repair" (fun () ->
          Budget.tick ~phase:"opt-s-repair" budget;
          m)
    in
    finish ~optimal:true ~ratio:1.0 ~method_used:poly_method result
  | Poly p ->
    let result =
      Metrics.with_span "opt-s-repair" (fun () ->
          Budget.tick ~phase:"opt-s-repair" budget;
          if Table.is_empty m then begin
            Osr.check_delta_only t.dt;
            m
          end
          else
            let span_name =
              match p.kind with
              | Common_lhs -> "common-lhs"
              | Consensus -> "consensus"
              | Marriage _ -> "marriage"
            in
            Metrics.with_span span_name (fun () -> combine t p budget))
    in
    finish ~optimal:true ~ratio:1.0 ~method_used:poly_method result
  | Hard cg ->
    if Table.size m <= exact_size_limit then
      let result =
        Metrics.with_span "s-exact" (fun () ->
            let dense = Cg.Incremental.materialize cg in
            let cover = Vc.exact ~budget (Cg.graph dense) in
            Cg.delete_cover dense m cover)
      in
      finish ~optimal:true ~ratio:1.0 ~method_used:exact_method result
    else
      let result =
        Metrics.with_span "s-approx" (fun () ->
            let dense = Cg.Incremental.materialize cg in
            let cover = Vc.approx2 (Cg.graph dense) in
            Cg.delete_cover dense m cover)
      in
      finish ~optimal:false ~ratio:2.0 ~method_used:approx_method result

type stats = {
  ticks : int;
  inserts : int;
  deletes : int;
  rejects : int;
  summaries : int;
  live : int;
  blocks : int;
  conflicts : int option;
  cache : Cache.stats;
}

let stats (t : t) =
  {
    ticks = t.ticks;
    inserts = t.inserts;
    deletes = t.deletes;
    rejects = t.rejects;
    summaries = t.summaries;
    live = size t;
    blocks = Tmap.cardinal t.blocks;
    conflicts =
      (match t.mode with
      | Hard cg -> Some (Cg.Incremental.n_conflicts cg)
      | Trivial | Poly _ -> None);
    cache = Cache.stats t.bcache;
  }
