open Repair_relational
module Json = Repair_obs.Json
module Repair_error = Repair_runtime.Repair_error

type t =
  | Insert of { id : Table.id option; weight : float; values : Value.t list }
  | Delete of { id : Table.id }

let err ?line detail =
  Repair_error.raise_error (Parse { source = "<delta>"; line; detail })

let int_field ?line j name =
  match Json.member name j with
  | None -> None
  | Some v -> (
    match Json.int_value v with
    | Some i -> Some i
    | None -> err ?line (Printf.sprintf "field %S must be an integer" name))

let parse ?line s =
  match Json.of_string s with
  | Error m -> err ?line ("invalid JSON: " ^ m)
  | Ok j -> (
    let op =
      match Json.member "op" j with
      | Some (Json.String s) -> s
      | Some _ -> err ?line "field \"op\" must be a string"
      | None -> err ?line "missing field \"op\""
    in
    match op with
    | "insert" ->
      let values =
        match Json.member "tuple" j with
        | Some (Json.List vs) ->
          List.map
            (function
              | Json.String s -> Value.of_string s
              | Json.Int n -> Value.int n
              | _ -> err ?line "tuple cells must be strings or integers")
            vs
        | Some _ -> err ?line "field \"tuple\" must be a list"
        | None -> err ?line "insert delta: missing field \"tuple\""
      in
      let weight =
        match Json.member "weight" j with
        | None -> 1.0
        | Some v -> (
          match Json.float_value v with
          | Some w when w > 0.0 -> w
          | Some _ -> err ?line "field \"weight\" must be positive"
          | None -> err ?line "field \"weight\" must be a number")
      in
      Insert { id = int_field ?line j "id"; weight; values }
    | "delete" -> (
      match int_field ?line j "id" with
      | Some id -> Delete { id }
      | None -> err ?line "delete delta: missing field \"id\"")
    | other -> err ?line (Printf.sprintf "unknown delta op %S" other))

let to_line = function
  | Insert { id; weight; values } ->
    let fields =
      ("op", Json.String "insert")
      :: ( "tuple",
           Json.List (List.map (fun v -> Json.String (Value.to_string v)) values)
         )
      :: (if weight = 1.0 then [] else [ ("weight", Json.Float weight) ])
      @ match id with None -> [] | Some i -> [ ("id", Json.Int i) ]
    in
    Json.to_string (Json.Obj fields)
  | Delete { id } ->
    Json.to_string (Json.Obj [ ("op", Json.String "delete"); ("id", Json.Int id) ])

let pp ppf d = Format.pp_print_string ppf (to_line d)
