(** The streaming delta log (DESIGN §16): one JSONL line per update.

    - [{"op":"insert","tuple":["1","2"],"weight":2.0,"id":7}] — [weight]
      defaults to [1.0]; [id] defaults to one above the largest id the
      session has seen. Tuple cells are strings (decoded exactly like CSV
      cells: integer literals, ["_|_"], ["$n"], anything else a string)
      or bare JSON integers.
    - [{"op":"delete","id":7}]

    Inserted ids must exceed every id already seen by the session —
    identifiers are never reused, which is what makes cached block
    results (keyed by member-id slice) sound forever. *)

open Repair_relational

type t =
  | Insert of { id : Table.id option; weight : float; values : Value.t list }
  | Delete of { id : Table.id }

(** [parse ?line s] decodes one JSONL delta line.
    @raise Repair_runtime.Repair_error.Error
      ([Parse], source ["<delta>"], carrying [line]) on malformed
      input. *)
val parse : ?line:int -> string -> t

(** [to_line d] renders the delta back to one JSONL line ([parse]'s
    inverse for the values the generators produce). *)
val to_line : t -> string

val pp : Format.formatter -> t -> unit
