(** A delta-driven repair maintainer (DESIGN §16).

    [create d base] classifies Δ once: trivial, polynomial (the first
    OptSRepair simplification fixes a partition attribute set — blocks
    under it never interact, so locality is sound), or hard (no
    decomposition exists; the conflict graph is maintained incrementally
    instead). [tick] applies one {!Delta.t} at O(affected-group) cost:
    inserts extend the store tip, deletes tombstone a position, and on
    the polynomial side exactly the touched block is marked dirty —
    re-solved lazily at the next [summary], every clean block served
    from the cache. [summary] recombines the block results (replaying
    their captured metrics and budget steps in block order) into a
    report that is byte-identical — result table, distance, method, and
    integer metrics modulo the [stream.*] counters — to a from-scratch
    driver run on {!materialized}.

    Metrics caveat: a block result captures its metrics when it is
    first solved (at some summary), so the identity contract requires
    metrics to be enabled consistently across summaries, not only at
    the one being compared (the serving daemon always has them
    enabled). *)

open Repair_relational
open Repair_fd

type t

(** Duplicated from the driver ladder (lib/core sits above this
    library); test_stream pins them to the driver's values. *)

val exact_size_limit : int

val poly_method : string

val exact_method : string

val approx_method : string

val default_cache_capacity : int

(** [create ?cache_capacity d base] — copies [base] (O(n)) into a store
    the session owns the tip of. [cache_capacity] bounds the LRU block
    cache (counters [stream.block-cache.*]). *)
val create : ?cache_capacity:int -> Fd_set.t -> Table.t -> t

(** [tick t delta] applies one delta. O(affected-group).
    @raise Repair_runtime.Repair_error.Error
      ([Parse]) on arity mismatch, non-positive weight, an insert id not
      above every id seen, or a delete of an unknown id. A rejected tick
      leaves the session state unchanged. *)
val tick : t -> Delta.t -> unit

(** The current table: base plus inserts, minus tombstoned deletes.
    O(n) when deletes exist; the tombstones are applied here, never per
    tick. *)
val materialized : t -> Table.t

type report = {
  result : Table.t;
  distance : float;
  optimal : bool;
  ratio : float;
  method_used : string;
}

(** [summary t] — the refreshed repair, byte-identical to a cold driver
    run on {!materialized} (which always reports [degraded = false] and
    no fallbacks here: sessions solve under unlimited budgets). *)
val summary : t -> report

val fds : t -> Fd_set.t
val schema : t -> Schema.t

(** Live row count (inserts applied, tombstones excluded). *)
val size : t -> int

type stats = {
  ticks : int;
  inserts : int;
  deletes : int;
  rejects : int;
  summaries : int;
  live : int;
  blocks : int; (* live blocks; 0 outside the polynomial mode *)
  conflicts : int option; (* live conflict count; hard mode only *)
  cache : Repair_serve.Cache.stats;
}

val stats : t -> stats
