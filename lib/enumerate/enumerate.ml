open Repair_relational
open Repair_fd
open Repair_runtime
module Iset = Set.Make (Int)

exception Limit_exceeded

(* S-repairs are the maximal cliques of the *compatibility* graph (the
   complement of the conflict graph): FD consistency is a pairwise
   property. We run Bron–Kerbosch with pivoting, where adjacency means
   "this pair of tuples is consistent". *)
let s_repairs ?(budget = Budget.unlimited ()) ?(limit = 10_000) d tbl =
  Repair_obs.Metrics.with_span "enumerate.s-repairs" @@ fun () ->
  let d = Fd_set.remove_trivial d in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  let schema = Table.schema tbl in
  let compatible = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ok =
        Fd_set.pair_consistent d schema (Table.tuple tbl ids.(i))
          (Table.tuple tbl ids.(j))
      in
      compatible.(i).(j) <- ok;
      compatible.(j).(i) <- ok
    done
  done;
  let neighbours v =
    let rec go j acc =
      if j < 0 then acc
      else go (j - 1) (if compatible.(v).(j) then Iset.add j acc else acc)
    in
    go (n - 1) Iset.empty
  in
  let adj = Array.init n neighbours in
  let found = ref [] in
  let count = ref 0 in
  let emit clique =
    incr count;
    Repair_obs.Metrics.incr "enumerate.repairs";
    Repair_obs.Trace.instant "enumerate.repair-found";
    if !count > limit then raise Limit_exceeded;
    found := Table.restrict tbl (List.map (fun v -> ids.(v)) (Iset.elements clique)) :: !found
  in
  let rec bron_kerbosch r p x =
    Budget.tick ~phase:"enumerate" budget;
    if Iset.is_empty p && Iset.is_empty x then emit r
    else begin
      (* Pivot on the candidate with the most neighbours in p. *)
      let pivot =
        Iset.fold
          (fun v best ->
            let score = Iset.cardinal (Iset.inter adj.(v) p) in
            match best with
            | Some (_, s) when s >= score -> best
            | _ -> Some (v, score))
          (Iset.union p x) None
      in
      let candidates =
        match pivot with
        | Some (v, _) -> Iset.diff p adj.(v)
        | None -> p
      in
      let p = ref p and x = ref x in
      Iset.iter
        (fun v ->
          bron_kerbosch (Iset.add v r) (Iset.inter !p adj.(v))
            (Iset.inter !x adj.(v));
          p := Iset.remove v !p;
          x := Iset.add v !x)
        candidates
    end
  in
  (match n with
  | 0 -> emit Iset.empty
  | _ ->
    (try bron_kerbosch Iset.empty (Iset.of_list (List.init n Fun.id)) Iset.empty
     with Limit_exceeded ->
       failwith
         (Printf.sprintf "Enumerate.s_repairs: more than %d repairs" limit)));
  List.rev !found

let count_s_repairs ?budget ?limit d tbl =
  List.length (s_repairs ?budget ?limit d tbl)

let optimal_s_repairs ?budget ?limit d tbl =
  let all = s_repairs ?budget ?limit d tbl in
  let best =
    List.fold_left (fun acc s -> max acc (Table.total_weight s)) 0.0 all
  in
  List.filter (fun s -> Table.total_weight s >= best -. 1e-9) all

let cardinality_repair_exists d tbl ~max_deletions =
  let s = Repair_srepair.S_exact.optimal d (Table.map_weights tbl (fun _ _ -> 1.0)) in
  Table.size tbl - Table.size s <= max_deletions
