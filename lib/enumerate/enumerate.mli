(** Enumeration of subset repairs.

    S-repairs (maximal consistent subsets) are exactly the maximal
    independent sets of the conflict graph; this module enumerates them by
    pivot-free backtracking. Enumeration is inherently exponential in the
    number of repairs — use the [limit] argument. This supports the
    paper's discussion of prioritized repairs (Section 5) and connects to
    the counting results of Livshits–Kimelfeld (PODS'17, the paper's
    reference [26]) exercised in {!Count}. *)

open Repair_relational
open Repair_fd

(** [s_repairs ?budget ?limit d tbl] lists the S-repairs of [tbl]
    (maximal consistent subsets), up to [limit] (default 10_000) of them;
    raises [Failure] if the limit is exceeded — counting repairs is
    #P-hard in general [26]. Each result is a subset of [tbl]. Every
    Bron–Kerbosch node is a [budget] checkpoint (phase ["enumerate"]);
    exhaustion raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val s_repairs :
  ?budget:Repair_runtime.Budget.t ->
  ?limit:int ->
  Fd_set.t ->
  Table.t ->
  Table.t list

(** [count_s_repairs ?budget ?limit d tbl] is
    [List.length (s_repairs d tbl)]. *)
val count_s_repairs :
  ?budget:Repair_runtime.Budget.t -> ?limit:int -> Fd_set.t -> Table.t -> int

(** [optimal_s_repairs ?budget ?limit d tbl] lists only the optimal
    S-repairs (minimum deleted weight). *)
val optimal_s_repairs :
  ?budget:Repair_runtime.Budget.t ->
  ?limit:int ->
  Fd_set.t ->
  Table.t ->
  Table.t list

(** [cardinality_repair_exists d tbl ~max_deletions] — is there a
    consistent subset deleting at most [max_deletions] tuples? (The
    decision version of cardinality repairs, useful for dirtiness
    budgeting.) *)
val cardinality_repair_exists :
  Fd_set.t -> Table.t -> max_deletions:int -> bool
