(** Append-only interning of {!Value.t} into dense integer codes.

    Equal values (under {!Value.equal}) always receive the same code and
    distinct values never share one, so comparing codes with [(=)] is
    equivalent to comparing the underlying values. Codes are dense:
    the [n]-th distinct value interned gets code [n - 1]. Pools only
    grow; they are shared freely between the columnar stores derived
    from one another (see {!Table}).

    Pools are domain-safe: the append and decode paths are serialized by
    an internal mutex, so concurrent [intern]/[value] calls from a
    {!Repair_par.Pool} worker and the owning domain cannot observe a
    torn append. Code assignment order (and thus the codes themselves)
    still depends on call order, so deterministic parallel drivers only
    {e read} existing codes from workers and leave interning to the
    orchestrating domain. *)

type t

val create : ?capacity:int -> unit -> t

(** Number of distinct values interned so far. *)
val size : t -> int

(** [intern p v] returns the code of [v], assigning the next dense code
    on first sight. *)
val intern : t -> Value.t -> int

(** [code_opt p v] is [v]'s code if it has been interned. *)
val code_opt : t -> Value.t -> int option

(** [value p c] decodes a code.
    @raise Invalid_argument if [c] was never assigned. *)
val value : t -> int -> Value.t
