(** Tables: the paper's data model (Section 2.1).

    A table [T] over a schema maps each tuple identifier [i ∈ ids(T)] to a
    tuple [T[i]] and a positive weight [w_T(i)]. Duplicate tuples (equal
    tuples under distinct identifiers) are allowed. Tables are immutable;
    all operations are persistent.

    Internally a table is an id-slice view over an append-only columnar
    store whose values are interned into dense codes (see DESIGN §11):
    [group_by], [select], [restrict] and same-store [union] return
    O(result-size) views sharing the backing arrays, and grouping is a
    single hash pass over interned code columns. None of this changes
    the observable semantics above. *)

type t

type id = int

(** {1 Construction} *)

(** [empty schema] is the table with no tuples. *)
val empty : Schema.t -> t

(** [add ?id ?weight tbl tuple] adds a tuple. When [id] is omitted, a fresh
    identifier (one above the current maximum) is used. [weight] defaults
    to [1.0].

    @raise Invalid_argument if the id is already used, the weight is not
    positive, or the tuple arity mismatches the schema. *)
val add : ?id:id -> ?weight:float -> t -> Tuple.t -> t

(** [of_list schema rows] builds a table from [(id, weight, tuple)] rows. *)
val of_list : Schema.t -> (id * float * Tuple.t) list -> t

(** [of_tuples schema tuples] numbers tuples 1..n with unit weights. *)
val of_tuples : Schema.t -> Tuple.t list -> t

(** Bulk construction. A builder accumulates rows and commits them into
    a columnar store in one pass — ids are tracked with a hash set and a
    running maximum, so loading n rows is O(n) instead of the O(n log n)
    (plus a max-binding walk per insert) of folding {!add}. Used by the
    IO front-ends. *)
module Builder : sig
  type table := t
  type t

  val create : ?capacity:int -> Schema.t -> t

  (** Rows accumulated so far. *)
  val length : t -> int

  (** Same contract and error messages as {!Table.add}: omitted ids get
      one above the current maximum, duplicate ids / non-positive
      weights / arity mismatches raise [Invalid_argument]. *)
  val add : ?id:id -> ?weight:float -> t -> Tuple.t -> unit

  (** Commit the accumulated rows. The builder must not be reused. *)
  val build : t -> table
end

(** {1 Access} *)

val schema : t -> Schema.t

(** [ids tbl] is [ids(T)], in increasing order. *)
val ids : t -> id list

(** [size tbl] is [|T|], the number of tuple identifiers. *)
val size : t -> int

val is_empty : t -> bool
val mem : t -> id -> bool

(** [tuple tbl i] is [T[i]].
    @raise Not_found if [i ∉ ids(T)]. *)
val tuple : t -> id -> Tuple.t

(** [weight tbl i] is [w_T(i)].
    @raise Not_found if [i ∉ ids(T)]. *)
val weight : t -> id -> float

val find_opt : t -> id -> (Tuple.t * float) option

(** [tuples tbl] is the list of tuples [T[*]] (with duplicates, in id
    order). *)
val tuples : t -> Tuple.t list

(** [total_weight tbl] is [w_T(T)], the sum of all tuple weights. *)
val total_weight : t -> float

val fold : (id -> Tuple.t -> float -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (id -> Tuple.t -> float -> unit) -> t -> unit
val for_all : (id -> Tuple.t -> bool) -> t -> bool
val exists : (id -> Tuple.t -> bool) -> t -> bool

(** {1 Predicates from the paper} *)

(** No two distinct identifiers carry equal tuples. *)
val is_duplicate_free : t -> bool

(** All weights are equal. *)
val is_unweighted : t -> bool

(** {1 Relational operations} *)

(** [select tbl p] keeps the rows satisfying [p]. *)
val select : t -> (id -> Tuple.t -> bool) -> t

(** [select_eq tbl x key] is [σ_{X=key} T]: the rows whose projection on [x]
    equals [key] (a tuple over the attributes of [x] in schema order). *)
val select_eq : t -> Attr_set.t -> Tuple.t -> t

(** [project_distinct tbl x] is [π_X T[*]]: the distinct projections of the
    tuples on [x]. *)
val project_distinct : t -> Attr_set.t -> Tuple.t list

(** [group_by tbl x] partitions the table by the projection on [x],
    returning each distinct key with its subtable. The subtables keep the
    original identifiers and weights, so they are subsets of [tbl]. *)
val group_by : t -> Attr_set.t -> (Tuple.t * t) list

(** {2 Parallel grouping}

    The grouping passes accept a {!runner} — an executor for an array of
    independent thunks, returning their results in index order — so they
    can fan per-chunk work out to a {!Repair_par.Pool} without this
    library depending on it ({!seq_runner} runs the thunks inline). The
    parallel variants are {e exactly} equivalent to their sequential
    counterparts for every chunk layout: rows are split into contiguous
    chunks, partitioned per chunk by interned code keys, and the chunk
    results merged in chunk order, which provably reconstitutes the
    sequential first-seen group order and input member order. *)

(** An executor for independent tasks; [run tasks] returns the results
    in task-index order and re-raises task exceptions deterministically
    (first failing index) — see {!Repair_par.Pool.runner}. [width] is
    the executor's natural fan-out (a pool's domain count), used as the
    default chunk count. *)
type runner = {
  run : 'a. (unit -> 'a) array -> 'a array;
  width : int;
}

(** Runs tasks inline, in index order. *)
val seq_runner : runner

(** [group_by_par runner tbl x] — {!group_by}, with the hash partition
    fanned out over [chunks] (default [runner.width]) row chunks.
    [chunk_sizes] overrides the (deterministic, near-equal) chunk
    layout; sizes must sum to the visible row count.
    @raise Invalid_argument on a malformed [chunk_sizes]. *)
val group_by_par :
  runner -> ?chunk_sizes:int array -> ?chunks:int -> t -> Attr_set.t ->
  (Tuple.t * t) list

(** [restrict tbl ids] is the subset of [tbl] with the given identifiers
    (identifiers absent from [tbl] are ignored). *)
val restrict : t -> id list -> t

(** [remove tbl ids] deletes the given identifiers. *)
val remove : t -> id list -> t

(** [union t1 t2] merges tables with disjoint identifier sets.

    @raise Invalid_argument if an identifier occurs in both. *)
val union : t -> t -> t

(** [map_tuples tbl f] applies [f] to every tuple, keeping ids and weights:
    the result is an update of [tbl] in the paper's sense. *)
val map_tuples : t -> (id -> Tuple.t -> Tuple.t) -> t

(** [set_tuple tbl i tp] replaces the tuple at [i], keeping its weight.
    @raise Not_found if [i ∉ ids(T)]. *)
val set_tuple : t -> id -> Tuple.t -> t

(** [map_weights tbl f] replaces each weight [w] by [f id w].
    @raise Invalid_argument if some new weight is not positive. *)
val map_weights : t -> (id -> float -> float) -> t

(** {1 Repair-related distances (Section 2.3)} *)

(** [is_subset_of s tbl] holds iff [s] is a subset of [tbl]: same schema,
    [ids(S) ⊆ ids(T)], and matching tuples and weights. *)
val is_subset_of : t -> t -> bool

(** [is_update_of u tbl] holds iff [u] is an update of [tbl]: same schema,
    [ids(U) = ids(T)], and matching weights. *)
val is_update_of : t -> t -> bool

(** [dist_sub s tbl] is [dist_sub(S, T)]: the total weight of the tuples of
    [tbl] missing from [s].

    @raise Invalid_argument if [s] is not a subset of [tbl]. *)
val dist_sub : t -> t -> float

(** [dist_upd u tbl] is [dist_upd(U, T)]: the weighted Hamming distance.

    @raise Invalid_argument if [u] is not an update of [tbl]. *)
val dist_upd : t -> t -> float

(** [active_domain tbl a] is the set of values attribute [a] takes,
    de-duplicated and sorted. *)
val active_domain : t -> Schema.attribute -> Value.t list

(** All values occurring anywhere in the table. *)
val all_values : t -> Value.t list

(** {1 Display} *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Zero-copy view access}

    Positional access to a table's visible rows, bypassing id lookups.
    A table exposes its rows at positions [0 .. length tbl - 1] in
    increasing id order; positions are dense, so algorithms (e.g.
    conflict-graph construction) can use them directly as vertex
    indices without a side [Hashtbl]. *)
module View : sig
  (** Number of visible rows (equals {!Table.size}). *)
  val length : t -> int

  (** [id tbl k] / [tuple tbl k] / [weight tbl k] access the row at
      visible position [k] (0-based, id order). No bounds checks beyond
      the backing array's. *)
  val id : t -> int -> id

  val tuple : t -> int -> Tuple.t
  val weight : t -> int -> float

  (** All visible ids, in increasing order. *)
  val ids_array : t -> id array

  (** [of_positions tbl ps] is the sub-view of [tbl] keeping the rows at
      positions [ps].
      @raise Invalid_argument if [ps] is not strictly increasing or a
      position is out of range. *)
  val of_positions : t -> int array -> t

  (** [group_within tbl ps x] partitions the rows at positions [ps] by
      their projection on [x], returning position arrays: groups in
      first-seen order, members in input order. A single hash pass over
      the interned code columns — no keys or subtables are built. *)
  val group_within : t -> int array -> Attr_set.t -> int array list

  (** [group_within_par runner tbl ps x] — {!group_within} with the
      partition fanned out over row chunks; bit-identical output for
      every chunk layout (see {!Table.group_by_par}). *)
  val group_within_par :
    runner -> ?chunk_sizes:int array -> ?chunks:int -> t -> int array ->
    Attr_set.t -> int array list

  (** [groups tbl x] is {!Table.group_by} without the subtables: each
      distinct key (sorted) paired with the visible positions of its
      rows (increasing). *)
  val groups : t -> Attr_set.t -> (Tuple.t * int array) list
end
