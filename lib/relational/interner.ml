(* Value interning: an append-only dictionary assigning each distinct
   [Value.t] a dense integer code. Codes are handed out in first-seen
   order, so equal values always share a code and distinct values never
   do. A pool is shared between a columnar store and every store derived
   from it, which lets derived stores copy code columns verbatim instead
   of re-hashing the values. *)

module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Pools are shared across every store derived from one table, and under
   a domain pool those stores can be decoded from worker domains while
   the owner keeps appending. A single mutex over the append/decode paths
   makes the pool domain-safe; the parallel hot loops (partition,
   same-store union) work purely on code arrays and never take it, so
   the lock is uncontended in practice. *)
type t = {
  codes : int H.t;
  mutable values : Value.t array;
  mutable n : int;
  lock : Mutex.t;
}

let create ?(capacity = 64) () =
  { codes = H.create capacity;
    values = Array.make 16 Value.Unit;
    n = 0;
    lock = Mutex.create () }

let locked p f =
  Mutex.lock p.lock;
  match f () with
  | v ->
    Mutex.unlock p.lock;
    v
  | exception e ->
    Mutex.unlock p.lock;
    raise e

let size p = locked p (fun () -> p.n)

let intern p v =
  locked p (fun () ->
      match H.find_opt p.codes v with
      | Some c -> c
      | None ->
        let c = p.n in
        if c = Array.length p.values then begin
          let grown = Array.make (2 * c) Value.Unit in
          Array.blit p.values 0 grown 0 c;
          p.values <- grown
        end;
        p.values.(c) <- v;
        p.n <- c + 1;
        H.add p.codes v c;
        c)

let code_opt p v = locked p (fun () -> H.find_opt p.codes v)

let value p c =
  locked p (fun () ->
      if c < 0 || c >= p.n then
        invalid_arg "Interner.value: code out of range";
      p.values.(c))
