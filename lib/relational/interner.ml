(* Value interning: an append-only dictionary assigning each distinct
   [Value.t] a dense integer code. Codes are handed out in first-seen
   order, so equal values always share a code and distinct values never
   do. A pool is shared between a columnar store and every store derived
   from it, which lets derived stores copy code columns verbatim instead
   of re-hashing the values. *)

module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = { codes : int H.t; mutable values : Value.t array; mutable n : int }

let create ?(capacity = 64) () =
  { codes = H.create capacity; values = Array.make 16 Value.Unit; n = 0 }

let size p = p.n

let intern p v =
  match H.find_opt p.codes v with
  | Some c -> c
  | None ->
    let c = p.n in
    if c = Array.length p.values then begin
      let grown = Array.make (2 * c) Value.Unit in
      Array.blit p.values 0 grown 0 c;
      p.values <- grown
    end;
    p.values.(c) <- v;
    p.n <- c + 1;
    H.add p.codes v c;
    c

let code_opt p v = H.find_opt p.codes v

let value p c =
  if c < 0 || c >= p.n then invalid_arg "Interner.value: code out of range";
  p.values.(c)
