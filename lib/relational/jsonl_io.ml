(* A minimal JSON-object-per-line reader/writer. Only the subset needed by
   the format is implemented: flat objects with string keys and
   string/integer values. *)

module Repair_error = Repair_runtime.Repair_error

type json_scalar = J_int of int | J_str of string

exception Parse_error of string

let error fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

(* --- scanner over a single line --- *)

type cursor = { line : string; mutable pos : int }

let peek c = if c.pos < String.length c.line then Some c.line.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error "expected '%c', found '%c' at %d" ch x c.pos
  | None -> error "expected '%c', found end of line" ch

let parse_string_literal c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
      | Some ('"' | '\\' | '/') ->
        Buffer.add_char buf (Option.get (peek c));
        advance c;
        go ()
      | Some 'u' ->
        advance c;
        let hex = Buffer.create 4 in
        for _ = 1 to 4 do
          (match peek c with
          | Some h -> Buffer.add_char hex h
          | None -> error "truncated \\u escape");
          advance c
        done;
        let code =
          match int_of_string_opt ("0x" ^ Buffer.contents hex) with
          | Some code -> code
          | None -> error "bad \\u escape %S" (Buffer.contents hex)
        in
        (* encode as UTF-8 (BMP only) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> error "bad escape")
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') -> error "floats are not supported"
    | _ -> ()
  in
  go ();
  let text = String.sub c.line start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> J_int i
  | None -> error "bad number %S" text

let parse_scalar c =
  skip_ws c;
  match peek c with
  | Some '"' -> J_str (parse_string_literal c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ('t' | 'f' | 'n' | '[' | '{') ->
    error "only strings and integers are supported"
  | Some ch -> error "unexpected '%c'" ch
  | None -> error "unexpected end of line"

let parse_object line =
  let c = { line; pos = 0 } in
  expect c '{';
  skip_ws c;
  let fields = ref [] in
  (match peek c with
  | Some '}' -> advance c
  | _ ->
    let rec members () =
      skip_ws c;
      let key = parse_string_literal c in
      expect c ':';
      let v = parse_scalar c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        members ()
      | Some '}' -> advance c
      | _ -> error "expected ',' or '}'"
    in
    members ());
  skip_ws c;
  if peek c <> None then error "trailing characters after object";
  List.rev !fields

(* --- table-level reader --- *)

let value_of_scalar = function
  | J_int i -> Value.Int i
  | J_str s -> Value.of_string s

let parse_string ?(file = "<jsonl>") ~name text =
  let parse_err ?line fmt =
    Fmt.kstr
      (fun detail ->
        Repair_error.raise_error (Parse { source = file; line; detail }))
      fmt
  in
  (* Keep original 1-based line numbers through the blank-line filter so
     errors point at the offending line of the input. *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  if lines = [] then parse_err "empty input";
  let objects =
    List.map
      (fun (line_no, line) ->
        try (line_no, parse_object line)
        with Parse_error m -> parse_err ~line:line_no "%s" m)
      lines
  in
  let attrs =
    match objects with
    | (_, first) :: _ ->
      List.filter (fun (k, _) -> k <> "#id" && k <> "#weight") first
      |> List.map fst
    | [] -> assert false
  in
  if attrs = [] then parse_err ~line:1 "no attribute keys";
  let schema =
    try Schema.make name attrs
    with Invalid_argument m ->
      Repair_error.raise_error (Schema_mismatch { source = file; detail = m })
  in
  let builder = Table.Builder.create ~capacity:(List.length objects) schema in
  List.iter
    (fun (line_no, fields) ->
      let id =
        match List.assoc_opt "#id" fields with
        | Some (J_int i) -> Some i
        | Some (J_str _) -> parse_err ~line:line_no "#id must be an integer"
        | None -> None
      in
      let weight =
        match List.assoc_opt "#weight" fields with
        | Some (J_int i) -> float_of_int i
        | Some (J_str s) -> (
          match float_of_string_opt s with
          | Some f -> f
          | None -> parse_err ~line:line_no "bad #weight")
        | None -> 1.0
      in
      let values =
        List.map
          (fun a ->
            match List.assoc_opt a fields with
            | Some v -> value_of_scalar v
            | None -> parse_err ~line:line_no "missing attribute %s" a)
          attrs
      in
      try Table.Builder.add ?id ~weight builder (Tuple.make values)
      with Invalid_argument m -> parse_err ~line:line_no "%s" m)
    objects;
  Table.Builder.build builder

let parse_result ?file ~name text =
  Repair_error.guard (fun () -> parse_string ?file ~name text)

(* --- writer --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let scalar_of_value v =
  match v with
  | Value.Int i -> string_of_int i
  | _ -> Printf.sprintf "\"%s\"" (escape (Value.to_string v))

let to_string ?(with_meta = true) tbl =
  let schema = Table.schema tbl in
  let buf = Buffer.create 256 in
  Table.iter
    (fun i t w ->
      Buffer.add_char buf '{';
      let fields =
        (if with_meta then
           [ Printf.sprintf "\"#id\": %d" i;
             Printf.sprintf "\"#weight\": %s"
               (if Float.is_integer w then string_of_int (int_of_float w)
                else Printf.sprintf "\"%g\"" w) ]
         else [])
        @ List.map
            (fun a ->
              Printf.sprintf "\"%s\": %s" (escape a)
                (scalar_of_value (Tuple.get_attr schema t a)))
            (Schema.attributes schema)
      in
      Buffer.add_string buf (String.concat ", " fields);
      Buffer.add_string buf "}\n")
    tbl;
  Buffer.contents buf

let read_file path =
  (* Sys_error can fire at open or mid-read (e.g. the path is a
     directory) — both are I/O errors, not parse errors. *)
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with Sys_error m ->
    Repair_error.raise_error (Io { file = path; detail = m })

let load ~name path = parse_string ~file:path ~name (read_file path)

let load_result ~name path = Repair_error.guard (fun () -> load ~name path)

let save ?with_meta tbl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?with_meta tbl))
