(* Columnar table core.

   A table is a view over an append-only columnar [store]: contiguous
   arrays of identifiers, weights, tuples, and per-column interned value
   codes (see {!Interner}). Relational operations that used to rebuild a
   persistent map per result — [group_by], [select], [restrict],
   [union] — now return O(result-size) id-slice views sharing the
   backing store, and grouping is a single hash pass over the interned
   code columns instead of one [Imap.filter] over the whole table per
   group.

   Representation invariants:
   - a table's visible rows are either the store prefix [0, len) ([All])
     or an explicit array of store row indices ([Rows]);
   - visible identifiers strictly increase in visible order, so
     iteration is in id order (as with the seed's [Map.Make (Int)]) and
     id lookup is a binary search — no side index to rebuild;
   - identifiers are unique across all committed rows of a store;
   - stores grow only at the end, and only through the unique "tip"
     table ([view = All] and [len = store.len]); every other mutation
     materializes a fresh store, sharing the interner pool so code
     columns copy without re-hashing. *)

type id = int

type store = {
  pool : Interner.t;
  mutable len : int; (* committed rows *)
  mutable ids : id array;
  mutable weights : float array;
  mutable tuples : Tuple.t array;
  mutable codes : int array array; (* codes.(col).(row) *)
}

type view =
  | All (* store rows [0, len), ids strictly increasing *)
  | Rows of int array (* store row indices, in increasing id order *)

type t = { schema : Schema.t; store : store; len : int; view : view }

let no_tuple = Tuple.make []

let new_store schema ~cap =
  {
    pool = Interner.create ();
    len = 0;
    ids = Array.make cap 0;
    weights = Array.make cap 0.0;
    tuples = Array.make cap no_tuple;
    codes = Array.init (Schema.arity schema) (fun _ -> Array.make cap 0);
  }

let empty schema = { schema; store = new_store schema ~cap:0; len = 0; view = All }

let check_row schema ?(what = "Table.add") weight tuple =
  if weight <= 0.0 then invalid_arg (what ^ ": weight must be positive");
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg (what ^ ": tuple arity does not match schema")

(* ---------- visible-row accessors ---------- *)

let size tbl = match tbl.view with All -> tbl.len | Rows a -> Array.length a
let is_empty tbl = size tbl = 0

let row_at tbl k = match tbl.view with All -> k | Rows a -> a.(k)
let id_at tbl k = tbl.store.ids.(row_at tbl k)
let tuple_at tbl k = tbl.store.tuples.(row_at tbl k)
let weight_at tbl k = tbl.store.weights.(row_at tbl k)

(* Visible ids strictly increase, so id lookup is a binary search over
   the visible sequence. Returns the visible position of [i]. *)
let find_pos tbl i =
  let n = size tbl in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if id_at tbl mid < i then lo := mid + 1 else hi := mid
  done;
  if !lo < n && id_at tbl !lo = i then Some !lo else None

let mem tbl i = find_pos tbl i <> None

let find_opt tbl i =
  Option.map (fun k -> (tuple_at tbl k, weight_at tbl k)) (find_pos tbl i)

let pos_exn tbl i =
  match find_pos tbl i with Some k -> k | None -> raise Not_found

let tuple tbl i = tuple_at tbl (pos_exn tbl i)
let weight tbl i = weight_at tbl (pos_exn tbl i)

let schema tbl = tbl.schema
let ids tbl = List.init (size tbl) (id_at tbl)
let tuples tbl = List.init (size tbl) (tuple_at tbl)

let fold f tbl acc =
  let acc = ref acc in
  for k = 0 to size tbl - 1 do
    acc := f (id_at tbl k) (tuple_at tbl k) (weight_at tbl k) !acc
  done;
  !acc

let iter f tbl =
  for k = 0 to size tbl - 1 do
    f (id_at tbl k) (tuple_at tbl k) (weight_at tbl k)
  done

let for_all p tbl =
  let n = size tbl in
  let rec go k = k >= n || (p (id_at tbl k) (tuple_at tbl k) && go (k + 1)) in
  go 0

let exists p tbl =
  let n = size tbl in
  let rec go k = k < n && (p (id_at tbl k) (tuple_at tbl k) || go (k + 1)) in
  go 0

let total_weight tbl =
  let acc = ref 0.0 in
  for k = 0 to size tbl - 1 do
    acc := !acc +. weight_at tbl k
  done;
  !acc

(* ---------- store growth and materialization ---------- *)

let ensure_capacity (st : store) extra =
  let needed = st.len + extra in
  let cap = Array.length st.ids in
  if needed > cap then begin
    let cap' = max needed (max 16 (2 * cap)) in
    let grow_int a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 st.len;
      b
    in
    st.ids <- grow_int st.ids;
    let w = Array.make cap' 0.0 in
    Array.blit st.weights 0 w 0 st.len;
    st.weights <- w;
    let tp = Array.make cap' no_tuple in
    Array.blit st.tuples 0 tp 0 st.len;
    st.tuples <- tp;
    st.codes <- Array.map grow_int st.codes
  end

(* Append one committed row; caller guarantees id uniqueness. *)
let push (st : store) i w t =
  ensure_capacity st 1;
  let r = st.len in
  st.ids.(r) <- i;
  st.weights.(r) <- w;
  st.tuples.(r) <- t;
  Array.iteri (fun c col -> col.(r) <- Interner.intern st.pool (Tuple.get t c)) st.codes;
  st.len <- r + 1

(* Fresh store holding this table's visible rows (in id order), sharing
   the interner pool so code columns copy verbatim. [insert], when
   given, splices one new row at visible position [at]. *)
let rebuild ?insert tbl =
  let st = tbl.store in
  let n = size tbl in
  let extra = if insert = None then 0 else 1 in
  let n' = n + extra in
  let ids = Array.make (max n' 1) 0 in
  let weights = Array.make (max n' 1) 0.0 in
  let tuples = Array.make (max n' 1) no_tuple in
  let arity = Array.length st.codes in
  let codes = Array.init arity (fun _ -> Array.make (max n' 1) 0) in
  let write k' r =
    ids.(k') <- st.ids.(r);
    weights.(k') <- st.weights.(r);
    tuples.(k') <- st.tuples.(r);
    for c = 0 to arity - 1 do
      codes.(c).(k') <- st.codes.(c).(r)
    done
  in
  (match insert with
  | None ->
    for k = 0 to n - 1 do
      write k (row_at tbl k)
    done
  | Some (at, i, w, t) ->
    for k = 0 to at - 1 do
      write k (row_at tbl k)
    done;
    ids.(at) <- i;
    weights.(at) <- w;
    tuples.(at) <- t;
    for c = 0 to arity - 1 do
      codes.(c).(at) <- Interner.intern st.pool (Tuple.get t c)
    done;
    for k = at to n - 1 do
      write (k + 1) (row_at tbl k)
    done);
  let store = { pool = st.pool; len = n'; ids; weights; tuples; codes } in
  { tbl with store; len = n'; view = All }

(* ---------- construction ---------- *)

let next_id tbl =
  let n = size tbl in
  if n = 0 then 1 else id_at tbl (n - 1) + 1

let add ?id ?(weight = 1.0) tbl tuple =
  check_row tbl.schema weight tuple;
  let i = match id with Some i -> i | None -> next_id tbl in
  if mem tbl i then
    invalid_arg (Printf.sprintf "Table.add: duplicate identifier %d" i);
  let n = size tbl in
  let at_tip = tbl.view = All && tbl.len = tbl.store.len in
  if at_tip && (n = 0 || i > id_at tbl (n - 1)) then begin
    push tbl.store i weight tuple;
    { tbl with len = tbl.len + 1 }
  end
  else begin
    (* Out-of-order id, or a table that no longer owns the store tip:
       rebuild the visible prefix with the row spliced in id order. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if id_at tbl mid < i then lo := mid + 1 else hi := mid
    done;
    rebuild ~insert:(!lo, i, weight, tuple) tbl
  end

(* Bulk construction: validate rows in arrival order (same errors as a
   fold over [add]), then build the columnar store in one pass. *)
module Builder = struct
  type t = {
    b_schema : Schema.t;
    mutable b_ids : id array;
    mutable b_weights : float array;
    mutable b_tuples : Tuple.t array;
    mutable b_n : int;
    seen : (id, unit) Hashtbl.t;
    mutable b_sorted : bool;
  }

  let create ?(capacity = 16) schema =
    {
      b_schema = schema;
      b_ids = Array.make (max capacity 1) 0;
      b_weights = Array.make (max capacity 1) 0.0;
      b_tuples = Array.make (max capacity 1) no_tuple;
      b_n = 0;
      seen = Hashtbl.create (max capacity 16);
      b_sorted = true;
    }

  let length b = b.b_n

  let add ?id ?(weight = 1.0) b tuple =
    check_row b.b_schema weight tuple;
    let i =
      match id with
      | Some i -> i
      | None -> if b.b_n = 0 then 1 else b.b_ids.(b.b_n - 1) + 1
      (* [b_ids] is not sorted in general, so the implicit-id rule
         "one above the current maximum" needs the running maximum, not
         the last id; [b_sorted] tells us when they coincide. *)
    in
    let i =
      match id with
      | Some _ -> i
      | None when b.b_sorted -> i
      | None -> Array.fold_left max min_int (Array.sub b.b_ids 0 b.b_n) + 1
    in
    if Hashtbl.mem b.seen i then
      invalid_arg (Printf.sprintf "Table.add: duplicate identifier %d" i);
    Hashtbl.add b.seen i ();
    if b.b_n = Array.length b.b_ids then begin
      let cap' = 2 * b.b_n in
      let ids = Array.make cap' 0 in
      Array.blit b.b_ids 0 ids 0 b.b_n;
      b.b_ids <- ids;
      let ws = Array.make cap' 0.0 in
      Array.blit b.b_weights 0 ws 0 b.b_n;
      b.b_weights <- ws;
      let ts = Array.make cap' no_tuple in
      Array.blit b.b_tuples 0 ts 0 b.b_n;
      b.b_tuples <- ts
    end;
    if b.b_n > 0 && i <= b.b_ids.(b.b_n - 1) then b.b_sorted <- false;
    b.b_ids.(b.b_n) <- i;
    b.b_weights.(b.b_n) <- weight;
    b.b_tuples.(b.b_n) <- tuple;
    b.b_n <- b.b_n + 1

  let build b =
    let n = b.b_n in
    let order = Array.init n (fun k -> k) in
    if not b.b_sorted then
      Array.sort (fun k1 k2 -> compare b.b_ids.(k1) b.b_ids.(k2)) order;
    let store = new_store b.b_schema ~cap:(max n 1) in
    for k = 0 to n - 1 do
      let j = order.(k) in
      push store b.b_ids.(j) b.b_weights.(j) b.b_tuples.(j)
    done;
    { schema = b.b_schema; store; len = n; view = All }
end

let of_list schema rows =
  let b = Builder.create ~capacity:(List.length rows) schema in
  List.iter (fun (id, weight, tuple) -> Builder.add ~id ~weight b tuple) rows;
  Builder.build b

let of_tuples schema tuples =
  let b = Builder.create ~capacity:(List.length tuples) schema in
  List.iter (fun tuple -> Builder.add b tuple) tuples;
  Builder.build b

(* ---------- predicates ---------- *)

let is_unweighted tbl =
  let n = size tbl in
  n = 0
  ||
  let w0 = weight_at tbl 0 in
  let rec go k = k >= n || (weight_at tbl k = w0 && go (k + 1)) in
  go 1

(* ---------- grouping on interned code columns ---------- *)

module Key = struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash a = Array.fold_left (fun h c -> (h * 31) + c + 1) 17 a
end

module Ktbl = Hashtbl.Make (Key)

(* Partition store rows [rows] by the interned codes of columns [cols].
   Returns groups as arrays of indices into [rows], groups in
   first-seen order, members in input order. One hash pass + one
   bucketing pass: O(|rows|) for any number of groups. *)
let partition (st : store) cols rows =
  let k = Array.length cols in
  let n = Array.length rows in
  if n = 0 then []
  else if k = 0 then [ Array.init n (fun j -> j) ]
  else begin
    let gid = Array.make n 0 in
    let n_groups = ref 0 in
    (if k = 1 then begin
       let col = st.codes.(cols.(0)) in
       let index = Hashtbl.create (2 * n) in
       for j = 0 to n - 1 do
         let c = col.(rows.(j)) in
         match Hashtbl.find_opt index c with
         | Some g -> gid.(j) <- g
         | None ->
           let g = !n_groups in
           incr n_groups;
           Hashtbl.add index c g;
           gid.(j) <- g
       done
     end
     else begin
       let code_cols = Array.map (fun c -> st.codes.(c)) cols in
       let index = Ktbl.create (2 * n) in
       for j = 0 to n - 1 do
         let r = rows.(j) in
         let key = Array.map (fun col -> col.(r)) code_cols in
         match Ktbl.find_opt index key with
         | Some g -> gid.(j) <- g
         | None ->
           let g = !n_groups in
           incr n_groups;
           Ktbl.add index key g;
           gid.(j) <- g
       done
     end);
    let counts = Array.make !n_groups 0 in
    Array.iter (fun g -> counts.(g) <- counts.(g) + 1) gid;
    let out = Array.map (fun c -> Array.make c 0) counts in
    let fill = Array.make !n_groups 0 in
    for j = 0 to n - 1 do
      let g = gid.(j) in
      out.(g).(fill.(g)) <- j;
      fill.(g) <- fill.(g) + 1
    done;
    Array.to_list out
  end

let visible_rows tbl =
  match tbl.view with
  | Rows a -> a
  | All -> Array.init tbl.len (fun k -> k)

let cols_of tbl x = Array.of_list (Schema.indices_of tbl.schema x)

(* ---------- parallel grouping ---------- *)

type runner = {
  run : 'a. (unit -> 'a) array -> 'a array;
  width : int;  (* natural fan-out: chunk count when the caller has no
                   better choice (a pool's domain count) *)
}

let seq_runner = { run = (fun tasks -> Array.map (fun f -> f ()) tasks); width = 1 }

(* Deterministic chunk layout: [chunks] near-equal contiguous slices of
   [0 .. n-1], the remainder spread over the leading chunks.
   [chunk_sizes] overrides the layout (scheduler-perturbation tests
   exercise this); the sizes must sum to [n]. *)
let chunk_layout ?chunk_sizes ~chunks n =
  match chunk_sizes with
  | Some sizes ->
    if Array.exists (fun s -> s < 0) sizes then
      invalid_arg "Table.chunk_layout: negative chunk size";
    if Array.fold_left ( + ) 0 sizes <> n then
      invalid_arg "Table.chunk_layout: chunk sizes must sum to the row count";
    let off = ref 0 in
    Array.map
      (fun len ->
        let lo = !off in
        off := lo + len;
        (lo, len))
      sizes
  | None ->
    let chunks = max 1 (min chunks (max 1 n)) in
    let base = n / chunks and rem = n mod chunks in
    Array.init chunks (fun c ->
        let len = base + if c < rem then 1 else 0 in
        let lo = (c * base) + min c rem in
        (lo, len))

(* Parallel [partition]: per-chunk local partitions merged in chunk
   order. The merge reconstitutes the sequential result exactly and
   independently of the chunk layout — scanning chunks in index order
   (and, within a chunk, local groups in first-seen order) visits keys
   in global first-seen order, and appending member slices chunk by
   chunk preserves global input order. Workers only read code arrays;
   all mutation is chunk-local or happens here after the barrier. *)
let partition_par runner ?chunk_sizes ?chunks (st : store) cols rows =
  let chunks = match chunks with Some c -> c | None -> runner.width in
  let k = Array.length cols in
  let n = Array.length rows in
  let layout = chunk_layout ?chunk_sizes ~chunks n in
  if n = 0 || k = 0 || Array.length layout <= 1 then partition st cols rows
  else begin
    let code_cols = Array.map (fun c -> st.codes.(c)) cols in
    let local (lo, len) () =
      let gid = Array.make len 0 in
      let n_groups = ref 0 in
      let keys_rev = ref [] in
      let index = Ktbl.create (2 * len) in
      for j = 0 to len - 1 do
        let r = rows.(lo + j) in
        let key = Array.map (fun col -> col.(r)) code_cols in
        match Ktbl.find_opt index key with
        | Some g -> gid.(j) <- g
        | None ->
          let g = !n_groups in
          incr n_groups;
          Ktbl.add index key g;
          keys_rev := key :: !keys_rev;
          gid.(j) <- g
      done;
      let keys = Array.of_list (List.rev !keys_rev) in
      let counts = Array.make !n_groups 0 in
      Array.iter (fun g -> counts.(g) <- counts.(g) + 1) gid;
      let out = Array.map (fun c -> Array.make c 0) counts in
      let fill = Array.make !n_groups 0 in
      for j = 0 to len - 1 do
        let g = gid.(j) in
        out.(g).(fill.(g)) <- lo + j;
        fill.(g) <- fill.(g) + 1
      done;
      Array.map2 (fun key members -> (key, members)) keys out
    in
    let locals = runner.run (Array.map local layout) in
    let index = Ktbl.create (2 * n) in
    let n_groups = ref 0 in
    let parts = ref (Array.make 16 []) in
    Array.iter
      (fun lgroups ->
        Array.iter
          (fun (key, members) ->
            let g =
              match Ktbl.find_opt index key with
              | Some g -> g
              | None ->
                let g = !n_groups in
                incr n_groups;
                Ktbl.add index key g;
                if g = Array.length !parts then begin
                  let grown = Array.make (2 * g) [] in
                  Array.blit !parts 0 grown 0 g;
                  parts := grown
                end;
                g
            in
            !parts.(g) <- members :: !parts.(g))
          lgroups)
      locals;
    List.init !n_groups (fun g -> Array.concat (List.rev !parts.(g)))
  end

let group_by tbl x =
  let cols = cols_of tbl x in
  let rows = visible_rows tbl in
  partition tbl.store cols rows
  |> List.map (fun idxs ->
         let members = Array.map (fun j -> rows.(j)) idxs in
         let witness = tbl.store.tuples.(members.(0)) in
         let key = Tuple.project tbl.schema witness x in
         (key, { tbl with view = Rows members }))
  |> List.sort (fun (k1, _) (k2, _) -> Tuple.compare k1 k2)

let group_by_par runner ?chunk_sizes ?chunks tbl x =
  let cols = cols_of tbl x in
  let rows = visible_rows tbl in
  partition_par runner ?chunk_sizes ?chunks tbl.store cols rows
  |> List.map (fun idxs ->
         let members = Array.map (fun j -> rows.(j)) idxs in
         let witness = tbl.store.tuples.(members.(0)) in
         let key = Tuple.project tbl.schema witness x in
         (key, { tbl with view = Rows members }))
  |> List.sort (fun (k1, _) (k2, _) -> Tuple.compare k1 k2)

(* Distinct projections in one pass: hash the code columns, keep one
   witness row per new key, never materialize subtables. *)
let project_distinct tbl x =
  let cols = cols_of tbl x in
  let rows = visible_rows tbl in
  let n = Array.length rows in
  let witnesses = ref [] in
  let k = Array.length cols in
  if n > 0 then
    if k = 0 then witnesses := [ rows.(0) ]
    else if k = 1 then begin
      let col = tbl.store.codes.(cols.(0)) in
      let index = Hashtbl.create (2 * n) in
      for j = 0 to n - 1 do
        let c = col.(rows.(j)) in
        if not (Hashtbl.mem index c) then begin
          Hashtbl.add index c ();
          witnesses := rows.(j) :: !witnesses
        end
      done
    end
    else begin
      let code_cols = Array.map (fun c -> tbl.store.codes.(c)) cols in
      let index = Ktbl.create (2 * n) in
      for j = 0 to n - 1 do
        let r = rows.(j) in
        let key = Array.map (fun col -> col.(r)) code_cols in
        if not (Ktbl.mem index key) then begin
          Ktbl.add index key ();
          witnesses := r :: !witnesses
        end
      done
    end;
  !witnesses
  |> List.map (fun r -> Tuple.project tbl.schema tbl.store.tuples.(r) x)
  |> List.sort Tuple.compare

let is_duplicate_free tbl =
  let all = Schema.attribute_set tbl.schema in
  List.length (project_distinct tbl all) = size tbl

(* ---------- selection and id-set views ---------- *)

let select tbl p =
  let n = size tbl in
  let buf = Array.make (max n 1) 0 in
  let m = ref 0 in
  for k = 0 to n - 1 do
    let r = row_at tbl k in
    if p tbl.store.ids.(r) tbl.store.tuples.(r) then begin
      buf.(!m) <- r;
      incr m
    end
  done;
  if !m = n then tbl else { tbl with view = Rows (Array.sub buf 0 !m) }

let select_eq tbl x key =
  select tbl (fun _ t -> Tuple.equal (Tuple.project tbl.schema t x) key)

let restrict tbl keep =
  let set = Hashtbl.create (2 * List.length keep) in
  List.iter (fun i -> Hashtbl.replace set i ()) keep;
  select tbl (fun i _ -> Hashtbl.mem set i)

let remove tbl gone =
  let set = Hashtbl.create (2 * List.length gone) in
  List.iter (fun i -> Hashtbl.replace set i ()) gone;
  select tbl (fun i _ -> not (Hashtbl.mem set i))

(* ---------- union ---------- *)

let union t1 t2 =
  if size t2 = 0 then t1
  else if size t1 = 0 then { t2 with schema = t1.schema }
  else begin
    let n1 = size t1 and n2 = size t2 in
    if t1.store == t2.store then begin
      (* Same backing store: merge the two sorted row slices. Store ids
         are unique, so a duplicate identifier is the same row index.
         This is the hot path of the common-lhs recursion (Opt_s_repair
         folds [union] over every group at every level), so the merge
         works directly on the raw index arrays and finishes each
         exhausted side with a blit. *)
      let a1 = visible_rows t1 and a2 = visible_rows t2 in
      let ids = t1.store.ids in
      let merged = Array.make (n1 + n2) 0 in
      let k1 = ref 0 and k2 = ref 0 and m = ref 0 in
      while !k1 < n1 && !k2 < n2 do
        let r1 = Array.unsafe_get a1 !k1 and r2 = Array.unsafe_get a2 !k2 in
        let i1 = Array.unsafe_get ids r1 and i2 = Array.unsafe_get ids r2 in
        if i1 = i2 then
          invalid_arg (Printf.sprintf "Table.union: identifier %d in both" i1)
        else if i1 < i2 then begin
          Array.unsafe_set merged !m r1;
          incr k1
        end
        else begin
          Array.unsafe_set merged !m r2;
          incr k2
        end;
        incr m
      done;
      if !k1 < n1 then Array.blit a1 !k1 merged !m (n1 - !k1)
      else if !k2 < n2 then Array.blit a2 !k2 merged !m (n2 - !k2);
      { t1 with len = max t1.len t2.len; view = Rows merged }
    end
    else begin
      (* Distinct stores: materialize the id-sorted interleaving. Code
         columns copy verbatim when the pools are shared; otherwise the
         foreign side re-interns into t1's pool. *)
      let st1 = t1.store and st2 = t2.store in
      let arity = Array.length st1.codes in
      if Array.length st2.codes <> arity then
        invalid_arg "Table.union: schema arity mismatch";
      let shared_pool = st1.pool == st2.pool in
      let n' = n1 + n2 in
      let ids = Array.make n' 0 in
      let weights = Array.make n' 0.0 in
      let tuples = Array.make n' no_tuple in
      let codes = Array.init arity (fun _ -> Array.make n' 0) in
      let write m (src : store) r =
        ids.(m) <- src.ids.(r);
        weights.(m) <- src.weights.(r);
        tuples.(m) <- src.tuples.(r);
        if shared_pool || src == st1 then
          for c = 0 to arity - 1 do
            codes.(c).(m) <- src.codes.(c).(r)
          done
        else
          for c = 0 to arity - 1 do
            codes.(c).(m) <- Interner.intern st1.pool (Tuple.get src.tuples.(r) c)
          done
      in
      let k1 = ref 0 and k2 = ref 0 and m = ref 0 in
      while !k1 < n1 && !k2 < n2 do
        let i1 = id_at t1 !k1 and i2 = id_at t2 !k2 in
        if i1 = i2 then
          invalid_arg (Printf.sprintf "Table.union: identifier %d in both" i1)
        else if i1 < i2 then begin
          write !m st1 (row_at t1 !k1);
          incr k1
        end
        else begin
          write !m st2 (row_at t2 !k2);
          incr k2
        end;
        incr m
      done;
      while !k1 < n1 do
        write !m st1 (row_at t1 !k1);
        incr k1;
        incr m
      done;
      while !k2 < n2 do
        write !m st2 (row_at t2 !k2);
        incr k2;
        incr m
      done;
      let store = { pool = st1.pool; len = n'; ids; weights; tuples; codes } in
      { schema = t1.schema; store; len = n'; view = All }
    end
  end

(* ---------- updates (materializing) ---------- *)

let map_tuples tbl f =
  let n = size tbl in
  let store = new_store tbl.schema ~cap:(max n 1) in
  (* A mapped store starts a fresh prefix but keeps the shared pool so
     unchanged values reuse their codes. *)
  let store = { store with pool = tbl.store.pool } in
  for k = 0 to n - 1 do
    push store (id_at tbl k) (weight_at tbl k) (f (id_at tbl k) (tuple_at tbl k))
  done;
  { tbl with store; len = n; view = All }

let set_tuple tbl i tp =
  let k = pos_exn tbl i in
  check_row tbl.schema ~what:"Table.set_tuple" (weight_at tbl k) tp;
  let t' = rebuild tbl in
  let st = t'.store in
  st.tuples.(k) <- tp;
  Array.iteri
    (fun c col -> col.(k) <- Interner.intern st.pool (Tuple.get tp c))
    st.codes;
  t'

let map_weights tbl f =
  let t' = rebuild tbl in
  let st = t'.store in
  for k = 0 to st.len - 1 do
    let w = f st.ids.(k) st.weights.(k) in
    if w <= 0.0 then invalid_arg "Table.map_weights: weight must be positive";
    st.weights.(k) <- w
  done;
  t'

(* ---------- repair-related distances ---------- *)

(* Walk two id-sorted visible sequences in lockstep. [on_left] fires for
   ids only in [t1], [on_both] for shared ids, [on_right] for ids only
   in [t2]. *)
let merge_iter t1 t2 ~on_left ~on_both ~on_right =
  let n1 = size t1 and n2 = size t2 in
  let k1 = ref 0 and k2 = ref 0 in
  while !k1 < n1 || !k2 < n2 do
    if !k1 >= n1 then begin
      on_right !k2;
      incr k2
    end
    else if !k2 >= n2 then begin
      on_left !k1;
      incr k1
    end
    else
      let i1 = id_at t1 !k1 and i2 = id_at t2 !k2 in
      if i1 = i2 then begin
        on_both !k1 !k2;
        incr k1;
        incr k2
      end
      else if i1 < i2 then begin
        on_left !k1;
        incr k1
      end
      else begin
        on_right !k2;
        incr k2
      end
  done

let is_subset_of s tbl =
  Schema.equal s.schema tbl.schema
  && size s <= size tbl
  &&
  if s.store == tbl.store then begin
    (* Shared store: identifiers determine rows, so inclusion of the
       row slices is inclusion of the tables. *)
    let ok = ref true in
    merge_iter s tbl
      ~on_left:(fun _ -> ok := false)
      ~on_both:(fun _ _ -> ())
      ~on_right:(fun _ -> ());
    !ok
  end
  else begin
    let ok = ref true in
    merge_iter s tbl
      ~on_left:(fun _ -> ok := false)
      ~on_both:(fun k1 k2 ->
        if
          not
            (Tuple.equal (tuple_at s k1) (tuple_at tbl k2)
            && weight_at s k1 = weight_at tbl k2)
        then ok := false)
      ~on_right:(fun _ -> ());
    !ok
  end

let is_update_of u tbl =
  Schema.equal u.schema tbl.schema
  && size u = size tbl
  &&
  let ok = ref true in
  merge_iter u tbl
    ~on_left:(fun _ -> ok := false)
    ~on_both:(fun k1 k2 -> if weight_at u k1 <> weight_at tbl k2 then ok := false)
    ~on_right:(fun _ -> ok := false);
  !ok

let dist_sub s tbl =
  if not (is_subset_of s tbl) then invalid_arg "Table.dist_sub: not a subset";
  (* Accumulate in [tbl]'s id order — the same summation order as the
     seed's fold, so distances stay bit-identical. *)
  let acc = ref 0.0 in
  merge_iter s tbl
    ~on_left:(fun _ -> ())
    ~on_both:(fun _ _ -> ())
    ~on_right:(fun k2 -> acc := !acc +. weight_at tbl k2);
  !acc

let dist_upd u tbl =
  if not (is_update_of u tbl) then invalid_arg "Table.dist_upd: not an update";
  let acc = ref 0.0 in
  merge_iter u tbl
    ~on_left:(fun _ -> ())
    ~on_both:(fun k1 k2 ->
      acc :=
        !acc
        +. weight_at tbl k2
           *. float_of_int (Tuple.hamming (tuple_at tbl k2) (tuple_at u k1)))
    ~on_right:(fun _ -> ());
  !acc

(* ---------- domains ---------- *)

let distinct_codes_of_col tbl col =
  let rows = visible_rows tbl in
  let codes = tbl.store.codes.(col) in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun r ->
      let c = codes.(r) in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        out := c :: !out
      end)
    rows;
  !out

let active_domain tbl a =
  let col = Schema.index_of tbl.schema a in
  distinct_codes_of_col tbl col
  |> List.map (Interner.value tbl.store.pool)
  |> List.sort Value.compare

let all_values tbl =
  let arity = Array.length tbl.store.codes in
  List.init arity (fun col -> distinct_codes_of_col tbl col)
  |> List.concat
  |> List.map (Interner.value tbl.store.pool)
  |> List.sort_uniq Value.compare

(* ---------- equality and display ---------- *)

let equal t1 t2 =
  Schema.equal t1.schema t2.schema
  && size t1 = size t2
  &&
  let n = size t1 in
  let same_rows =
    t1.store == t2.store
    &&
    let rec go k = k >= n || (row_at t1 k = row_at t2 k && go (k + 1)) in
    go 0
  in
  same_rows
  ||
  let rec go k =
    k >= n
    || (id_at t1 k = id_at t2 k
        && weight_at t1 k = weight_at t2 k
        && Tuple.equal (tuple_at t1 k) (tuple_at t2 k)
        && go (k + 1))
  in
  go 0

let pp ppf tbl =
  Fmt.pf ppf "@[<v>%a@," Schema.pp tbl.schema;
  iter (fun i t w -> Fmt.pf ppf "  %3d | %a | w=%g@," i Tuple.pp t w) tbl;
  Fmt.pf ppf "@]"

let to_string tbl = Fmt.str "%a" pp tbl

(* ---------- zero-copy view access ---------- *)

module View = struct
  let length = size
  let id = id_at
  let tuple = tuple_at
  let weight = weight_at
  let ids_array tbl = Array.init (size tbl) (id_at tbl)

  let of_positions tbl positions =
    let n = Array.length positions in
    for k = 1 to n - 1 do
      if positions.(k - 1) >= positions.(k) then
        invalid_arg "Table.View.of_positions: positions must strictly increase"
    done;
    if n > 0 && positions.(n - 1) >= size tbl then
      invalid_arg "Table.View.of_positions: position out of range";
    { tbl with view = Rows (Array.map (row_at tbl) positions) }

  let group_within tbl positions x =
    let cols = cols_of tbl x in
    let rows = Array.map (row_at tbl) positions in
    partition tbl.store cols rows
    |> List.map (fun idxs -> Array.map (fun j -> positions.(j)) idxs)

  let group_within_par runner ?chunk_sizes ?chunks tbl positions x =
    let cols = cols_of tbl x in
    let rows = Array.map (row_at tbl) positions in
    partition_par runner ?chunk_sizes ?chunks tbl.store cols rows
    |> List.map (fun idxs -> Array.map (fun j -> positions.(j)) idxs)

  let groups tbl x =
    let cols = cols_of tbl x in
    let rows = visible_rows tbl in
    partition tbl.store cols rows
    |> List.map (fun idxs ->
           let witness = tbl.store.tuples.(rows.(idxs.(0))) in
           (Tuple.project tbl.schema witness x, idxs))
    |> List.sort (fun (k1, _) (k2, _) -> Tuple.compare k1 k2)
end
