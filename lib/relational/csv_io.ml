(* A small CSV implementation: enough for round-tripping tables with
   quoted fields, without pulling in an external dependency. *)

module Repair_error = Repair_runtime.Repair_error

exception Unterminated

let parse_err ~file ?line fmt =
  Fmt.kstr
    (fun detail ->
      Repair_error.raise_error (Parse { source = file; line; detail }))
    fmt

let split_records s =
  (* Split into records, honoring quotes (newlines inside quotes kept). *)
  let buf = Buffer.create 64 in
  let records = ref [] in
  let in_quotes = ref false in
  let flush () =
    records := Buffer.contents buf :: !records;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
        in_quotes := not !in_quotes;
        Buffer.add_char buf c
      | '\n' when not !in_quotes -> flush ()
      | '\r' when not !in_quotes -> ()
      | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then flush ();
  List.rev !records |> List.filter (fun r -> String.trim r <> "")

let split_fields record =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length record in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match record.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then raise Unterminated
    else
      match record.[i] with
      | '"' when i + 1 < n && record.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let quote_field s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let parse_string ?(file = "<csv>") ~name s =
  match split_records s with
  | [] -> parse_err ~file "empty input"
  | header :: body ->
    let fields_of ~line record =
      try split_fields record
      with Unterminated ->
        parse_err ~file ~line "unterminated quoted field"
    in
    let cols = fields_of ~line:1 header |> List.map String.trim in
    let id_col = ref None and weight_col = ref None in
    let attrs =
      List.filteri
        (fun i c ->
          match c with
          | "#id" ->
            id_col := Some i;
            false
          | "#weight" ->
            weight_col := Some i;
            false
          | _ -> true)
        cols
    in
    if attrs = [] then parse_err ~file ~line:1 "no attribute columns";
    let schema =
      try Schema.make name attrs
      with Invalid_argument m ->
        Repair_error.raise_error (Schema_mismatch { source = file; detail = m })
    in
    let builder = Table.Builder.create ~capacity:(List.length body) schema in
    let parse_row line_no record =
      let fields = fields_of ~line:line_no record in
      if List.length fields <> List.length cols then
        parse_err ~file ~line:line_no "row has %d fields, expected %d"
          (List.length fields) (List.length cols);
      let id =
        Option.map
          (fun i ->
            match int_of_string_opt (List.nth fields i) with
            | Some v -> v
            | None -> parse_err ~file ~line:line_no "bad #id")
          !id_col
      in
      let weight =
        match !weight_col with
        | None -> 1.0
        | Some i -> (
          match float_of_string_opt (List.nth fields i) with
          | Some v -> v
          | None -> parse_err ~file ~line:line_no "bad #weight")
      in
      let vs =
        List.filteri
          (fun i _ -> Some i <> !id_col && Some i <> !weight_col)
          fields
        |> List.map Value.of_string
      in
      try Table.Builder.add ?id ~weight builder (Tuple.make vs)
      with Invalid_argument m -> parse_err ~file ~line:line_no "%s" m
    in
    List.iteri (fun k record -> parse_row (k + 2) record) body;
    Table.Builder.build builder

let parse_result ?file ~name s =
  Repair_error.guard (fun () -> parse_string ?file ~name s)

let to_string ?(with_meta = true) tbl =
  let schema = Table.schema tbl in
  let buf = Buffer.create 256 in
  let attrs = Schema.attributes schema in
  let header =
    (if with_meta then [ "#id"; "#weight" ] else []) @ attrs
  in
  Buffer.add_string buf (String.concat "," (List.map quote_field header));
  Buffer.add_char buf '\n';
  Table.iter
    (fun i t w ->
      let meta =
        if with_meta then [ string_of_int i; Printf.sprintf "%g" w ] else []
      in
      let fields =
        meta @ List.map Value.to_string (Tuple.values t)
        |> List.map quote_field
      in
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '\n')
    tbl;
  Buffer.contents buf

let read_file path =
  (* Sys_error can fire at open or mid-read (e.g. the path is a
     directory) — both are I/O errors, not parse errors. *)
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with Sys_error m ->
    Repair_error.raise_error (Io { file = path; detail = m })

let load ~name path = parse_string ~file:path ~name (read_file path)

let load_result ~name path = Repair_error.guard (fun () -> load ~name path)

let save ?with_meta tbl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?with_meta tbl))
