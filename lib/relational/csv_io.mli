(** Minimal CSV reading/writing for tables.

    The format is: a header row of attribute names, then one row per tuple.
    Two optional reserved columns are recognized in the header: [#id] (tuple
    identifier, integer) and [#weight] (positive float). When absent, ids
    are assigned 1..n and weights default to 1. Fields containing commas,
    quotes or newlines are double-quoted on output; quoted fields are
    understood on input. Values are parsed with {!Value.of_string}.

    Malformed input is reported as a structured
    {!Repair_runtime.Repair_error.t} carrying the file (or pseudo-source)
    name and the 1-based line number: [Parse] for malformed records,
    [Schema_mismatch] for bad headers (e.g. duplicate attributes), [Io]
    for file-system failures. Raising entry points throw
    {!Repair_runtime.Repair_error.Error}; [_result] variants return the
    error. *)

(** [parse_string ?file ~name s] parses CSV text into a table over a
    schema named [name]. [file] (default ["<csv>"]) labels error values.

    @raise Repair_runtime.Repair_error.Error on malformed input. *)
val parse_string : ?file:string -> name:string -> string -> Table.t

(** [parse_result ?file ~name s] is {!parse_string} with the error
    returned instead of raised. *)
val parse_result :
  ?file:string ->
  name:string ->
  string ->
  (Table.t, Repair_runtime.Repair_error.t) result

(** [to_string ?with_meta tbl] renders a table. With [with_meta] (default
    [true]) the [#id] and [#weight] columns are included. *)
val to_string : ?with_meta:bool -> Table.t -> string

(** File variants of the above. *)

val load : name:string -> string -> Table.t

val load_result :
  name:string -> string -> (Table.t, Repair_runtime.Repair_error.t) result

val save : ?with_meta:bool -> Table.t -> string -> unit
