type mode = Fail | Exhaust

type spec = { phase : string option; at : int; mode : mode }

let spec : spec option ref = ref None

let count = ref 0

(* Single-writer contract (same as Trace): the injector belongs to the
   domain that armed it. Checkpoints hit from other domains — worker
   tasks in a Repair_par.Pool tick their own budgets — neither count nor
   fire, so the checkpoint arithmetic stays deterministic: exactly the
   orchestrating domain's tick sequence, which for the batch runner is
   identical at any domain count. *)
let owner = ref (Domain.self ())

let arm ?phase ~at mode =
  if at < 1 then invalid_arg "Fault.arm: at must be >= 1";
  spec := Some { phase; at; mode };
  owner := Domain.self ();
  count := 0

let disarm () =
  spec := None;
  count := 0

let armed () =
  match !spec with
  | Some _ -> Domain.self () = !owner
  | None -> false

let checkpoints () = !count

let on_checkpoint ~phase ~elapsed ~steps =
  match !spec with
  | None -> ()
  | Some _ when not (Domain.self () = !owner) ->
    (* Enforce the single-writer contract here, not only in [armed]:
       this hook is public and callers other than Budget.tick may reach
       it without the [armed] pre-check. Non-owner checkpoints neither
       count nor fire. *)
    ()
  | Some s ->
    let matches =
      match s.phase with None -> true | Some p -> String.equal p phase
    in
    if matches then begin
      incr count;
      if !count >= s.at then begin
        let checkpoint = !count in
        (* One-shot: disarm before raising so the fallback path runs
           clean. Resetting [count] too keeps [checkpoints ()] consistent
           with [disarm]: after a fire it reads 0, not the stale trigger
           value. *)
        spec := None;
        count := 0;
        match s.mode with
        | Fail -> Repair_error.raise_error (Fault_injected { phase; checkpoint })
        | Exhaust ->
          Repair_error.raise_error (Budget_exhausted { phase; elapsed; steps })
      end
    end

let with_fault ?phase ~at mode f =
  arm ?phase ~at mode;
  Fun.protect ~finally:disarm f
