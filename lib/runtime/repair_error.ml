type t =
  | Parse of { source : string; line : int option; detail : string }
  | Io of { file : string; detail : string }
  | Schema_mismatch of { source : string; detail : string }
  | Budget_exhausted of { phase : string; elapsed : float; steps : int }
  | Intractable of { what : string; detail : string }
  | Size_limit of { what : string; limit : int; actual : int }
  | Fault_injected of { phase : string; checkpoint : int }
  | Corruption of { file : string; offset : int; detail : string }

exception Error of t

let raise_error e = raise (Error e)

let guard f = try Ok (f ()) with Error e -> Error e

let class_name = function
  | Parse _ -> "parse"
  | Io _ -> "io"
  | Schema_mismatch _ -> "schema-mismatch"
  | Budget_exhausted _ -> "budget-exhausted"
  | Intractable _ -> "intractable"
  | Size_limit _ -> "size-limit"
  | Fault_injected _ -> "fault-injected"
  | Corruption _ -> "corruption"

let exit_code = function
  | Parse _ -> 2
  | Io _ -> 3
  | Schema_mismatch _ -> 4
  | Budget_exhausted _ -> 5
  | Intractable _ -> 6
  | Size_limit _ -> 7
  | Fault_injected _ -> 8
  (* 9 = batch quarantine, 10 = serve drain-cancelled: both are whole-run
     outcomes owned by the CLI, not error classes. *)
  | Corruption _ -> 11

let pp ppf = function
  | Parse { source; line = Some l; detail } ->
    Fmt.pf ppf "%s:%d: %s" source l detail
  | Parse { source; line = None; detail } -> Fmt.pf ppf "%s: %s" source detail
  | Io { file; detail } -> Fmt.pf ppf "%s: %s" file detail
  | Schema_mismatch { source; detail } ->
    Fmt.pf ppf "%s: schema mismatch: %s" source detail
  | Budget_exhausted { phase; elapsed; steps } ->
    Fmt.pf ppf "budget exhausted in %s after %d steps (%.3fs)" phase steps
      elapsed
  | Intractable { what; detail } -> Fmt.pf ppf "%s: intractable: %s" what detail
  | Size_limit { what; limit; actual } ->
    Fmt.pf ppf "%s: instance size %d exceeds limit %d" what actual limit
  | Fault_injected { phase; checkpoint } ->
    Fmt.pf ppf "injected fault in %s at checkpoint %d" phase checkpoint
  | Corruption { file; offset; detail } ->
    Fmt.pf ppf "%s: corruption at byte %d: %s" file offset detail

let to_string e = Fmt.str "%a" pp e

let is_degradable = function
  | Budget_exhausted _ | Size_limit _ | Fault_injected _ -> true
  | Parse _ | Io _ | Schema_mismatch _ | Intractable _ | Corruption _ -> false

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Repair_error.Error: " ^ to_string e)
    | _ -> None)
