type op = Write | Fsync | Rename | Read

type kind = Short_write | Eintr | Enospc | Torn of int | Bit_flip of int

type step = { op : op; at : int; kind : kind }

exception Crash of { op : op; n : int }

let op_name = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Read -> "read"

let () =
  Printexc.register_printer (function
    | Crash { op; n } ->
      Some (Printf.sprintf "Io_fault.Crash: killed at %s #%d" (op_name op) n)
    | _ -> None)

let plan : step list ref = ref []

let fired_rev : step list ref = ref []

(* Per-op counters, indexed by [op_index]. Counting per kind keeps each
   step's trigger a pure function of the program's op sequence for that
   kind, independent of unrelated ops interleaved between them. *)
let counts = Array.make 4 0

let op_index = function Write -> 0 | Fsync -> 1 | Rename -> 2 | Read -> 3

(* Single-writer contract, same as Fault: the plan belongs to the domain
   that armed it; mediated ops from other domains neither count nor
   fire. *)
let owner = ref (Domain.self ())

let arm steps =
  List.iter
    (fun s -> if s.at < 1 then invalid_arg "Io_fault.arm: at must be >= 1")
    steps;
  plan := steps;
  fired_rev := [];
  Array.fill counts 0 4 0;
  owner := Domain.self ()

let disarm () =
  plan := [];
  fired_rev := [];
  Array.fill counts 0 4 0

let armed () = (match !plan with [] -> false | _ -> true) && Domain.self () = !owner

let fired () = List.rev !fired_rev

let seen op = counts.(op_index op)

let with_plan steps f =
  arm steps;
  Fun.protect ~finally:disarm f

(* [trigger op] advances the counter for [op] and returns the kind of
   the step firing at this occurrence, if any. *)
let trigger op =
  if not (armed ()) then None
  else begin
    let i = op_index op in
    counts.(i) <- counts.(i) + 1;
    let n = counts.(i) in
    match List.find_opt (fun s -> s.op = op && s.at = n) !plan with
    | None -> None
    | Some s ->
      plan := List.filter (fun s' -> not (s' == s)) !plan;
      fired_rev := s :: !fired_rev;
      Repair_obs.Metrics.incr "io_fault.injected";
      Some s.kind
  end

let unix_fail e op = raise (Unix.Unix_error (e, op_name op, ""))

let crash op = raise (Crash { op; n = counts.(op_index op) })

let flip_bit buf pos len b =
  (* Normalise to a bit inside the transfer, then invert it. *)
  let nbits = len * 8 in
  let bit = ((b mod nbits) + nbits) mod nbits in
  let byte = pos + (bit / 8) and k = bit mod 8 in
  Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl k)))

let rec plain_write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    plain_write_all fd buf (pos + n) (len - n)
  end

let write fd buf pos len =
  match trigger Write with
  | None -> Unix.write fd buf pos len
  | Some Short_write ->
    if len = 0 then Unix.write fd buf pos len
    else Unix.write fd buf pos (max 1 (len / 2))
  | Some Eintr -> unix_fail Unix.EINTR Write
  | Some Enospc -> unix_fail Unix.ENOSPC Write
  | Some (Torn keep) ->
    let k = min (max keep 0) len in
    if k > 0 then plain_write_all fd buf pos k;
    crash Write
  | Some (Bit_flip b) ->
    if len = 0 then Unix.write fd buf pos len
    else begin
      (* Corrupt a private copy: the caller's buffer stays pristine, as
         it would under real media corruption. *)
      let copy = Bytes.sub buf pos len in
      flip_bit copy 0 len b;
      plain_write_all fd copy 0 len;
      len
    end

let write_substring fd s pos len = write fd (Bytes.of_string s) pos len

let fsync fd =
  match trigger Fsync with
  | None | Some Short_write | Some (Bit_flip _) -> Unix.fsync fd
  | Some Eintr -> unix_fail Unix.EINTR Fsync
  | Some Enospc -> unix_fail Unix.ENOSPC Fsync
  | Some (Torn _) -> crash Fsync

let rename src dst =
  match trigger Rename with
  | None | Some Short_write | Some (Bit_flip _) -> Unix.rename src dst
  | Some Eintr -> unix_fail Unix.EINTR Rename
  | Some Enospc -> unix_fail Unix.ENOSPC Rename
  | Some (Torn _) -> crash Rename

let read fd buf pos len =
  match trigger Read with
  | None -> Unix.read fd buf pos len
  | Some Short_write ->
    if len = 0 then Unix.read fd buf pos len
    else Unix.read fd buf pos (max 1 (len / 2))
  | Some Eintr -> unix_fail Unix.EINTR Read
  | Some Enospc -> unix_fail Unix.EIO Read
  | Some (Torn _) -> crash Read
  | Some (Bit_flip b) ->
    let n = Unix.read fd buf pos len in
    if n > 0 then flip_bit buf pos n b;
    n

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n =
        try write fd buf off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n)
    end
  in
  go 0

let read_file path =
  let io detail = Repair_error.raise_error (Io { file = path; detail }) in
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec go () =
          match read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Buffer.contents buf
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
        in
        go ())

let write_file_atomic path text =
  let io detail = Repair_error.raise_error (Io { file = path; detail }) in
  let tmp = path ^ ".tmp" in
  match
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
  | fd ->
    (match
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           write_all fd (Bytes.of_string text);
           fsync fd)
     with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e));
    (match rename tmp path with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e))
