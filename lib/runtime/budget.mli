(** Cooperative execution budgets: wall-clock deadlines and step limits.

    The exact baselines of this library ([S_exact], [U_exact], [Max_sat],
    repair enumeration) are exponential in the worst case; the paper's
    dichotomy guarantees real workloads routinely land on the hard side.
    A {!t} bounds how much work such a solver may do: the solver calls
    {!tick} inside its hot loop (a {e checkpoint}), and the tick raises
    {!Repair_error.Budget_exhausted} once the deadline has passed or the
    step allowance is spent. Drivers catch that error and degrade to a
    certified polynomial approximation.

    A budget measures two independent resources:
    - {b wall-clock}: [timeout_s] seconds from {!create};
    - {b steps}: at most [max_steps] checkpoints.

    Step budgets are deterministic (a pure function of the instance), so
    tests use them; timeouts are for production callers. {!tick} also
    drives the {!Fault} injector, so checkpoints exist — and faults can
    fire — even under the {!unlimited} budget.

    Budgets are mutable and single-shot: reusing one across calls makes
    the calls share the allowance (which is exactly what a driver wants
    for a multi-phase pipeline). They are not thread-safe. *)

type t

(** [create ?timeout_s ?max_steps ()] starts a budget now. Omitted limits
    are unlimited. *)
val create : ?timeout_s:float -> ?max_steps:int -> unit -> t

(** [unlimited ()] is a {e fresh} budget with no limits — the default of
    every budgeted entry point. Ticking it only feeds the {!Fault}
    injector and the metrics tick counters. It is a function, not a
    shared value: a shared unlimited budget would accumulate [steps]
    across independent calls, so every driver entry creates its own. *)
val unlimited : unit -> t

(** [tick ?phase b] records one checkpoint. Raises
    {!Repair_error.Error}[ (Budget_exhausted _)] if [b] is spent, naming
    [phase] (default ["unphased"]); may raise an armed {!Fault} first.
    When {!Repair_obs.Metrics} is enabled, the same call site also bumps
    the ["ticks.<phase>"] counter, and when {!Repair_obs.Trace} is
    enabled it emits a ["ticks.<phase>"] instant event — budget checks,
    metric increments, and trace marks share one checkpoint. The counter
    name is interned per phase, so ticking allocates nothing after the
    first checkpoint of a phase (and nothing at all while both are
    disabled). *)
val tick : ?phase:string -> t -> unit

(** [steps b] — checkpoints recorded so far. *)
val steps : t -> int

(** [absorb b ~steps] adds [steps] checkpoints to [b] without raising,
    checkpointing, or feeding metrics — the accounting half of a tick,
    used by parallel drivers to fold the steps their worker tasks spent
    (each under its own fresh budget) back into the orchestrating
    budget at the barrier. Integer addition, so the total is independent
    of worker completion order. *)
val absorb : t -> steps:int -> unit

(** [elapsed b] — wall-clock seconds since [b] was created. *)
val elapsed : t -> float

(** [remaining_s b] — wall-clock seconds until the deadline ([None] when
    [b] has no wall limit; negative once the deadline has passed).
    Drivers that split one deadline across phases — e.g. the serving
    daemon capping per-request budgets by the drain deadline — read the
    remainder here instead of re-deriving it from [elapsed]. *)
val remaining_s : t -> float option

(** [limited b] — does [b] carry any finite limit? *)
val limited : t -> bool

(** [exhausted b] — non-raising probe: would the next {!tick} fail
    (ignoring faults)? *)
val exhausted : t -> bool
