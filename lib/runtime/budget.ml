type t = {
  deadline : float option;
  max_steps : int option;
  mutable steps : int;
  started : float;
  limited : bool;
}

let now () = Unix.gettimeofday ()

let create ?timeout_s ?max_steps () =
  let started = now () in
  {
    deadline = Option.map (fun s -> started +. s) timeout_s;
    max_steps;
    steps = 0;
    started;
    limited = timeout_s <> None || max_steps <> None;
  }

(* A function, not a shared value: a single global unlimited budget would
   accumulate [steps] across every independent call, skewing the
   ticks.<phase> metrics and any Fault checkpoint arithmetic that reads
   [steps]. Each entry point gets its own counter. *)
let unlimited () = create ()

let steps b = b.steps

let elapsed b = now () -. b.started

let limited b = b.limited

let exhaust b ~phase =
  Repair_error.raise_error
    (Budget_exhausted { phase; elapsed = elapsed b; steps = b.steps })

let tick ?(phase = "unphased") b =
  b.steps <- b.steps + 1;
  if Repair_obs.Metrics.enabled () then
    Repair_obs.Metrics.incr ("ticks." ^ phase);
  if Fault.armed () then
    Fault.on_checkpoint ~phase ~elapsed:(elapsed b) ~steps:b.steps;
  if b.limited then begin
    (match b.max_steps with
    | Some m when b.steps > m -> exhaust b ~phase
    | _ -> ());
    match b.deadline with
    | Some dl when now () > dl -> exhaust b ~phase
    | _ -> ()
  end

let exhausted b =
  b.limited
  && ((match b.max_steps with Some m -> b.steps >= m | None -> false)
     ||
     match b.deadline with Some dl -> now () > dl | None -> false)
