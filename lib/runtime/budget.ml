type t = {
  deadline : float option;
  max_steps : int option;
  mutable steps : int;
  started : float;
  limited : bool;
}

let now () = Unix.gettimeofday ()

let create ?timeout_s ?max_steps () =
  let started = now () in
  {
    deadline = Option.map (fun s -> started +. s) timeout_s;
    max_steps;
    steps = 0;
    started;
    limited = timeout_s <> None || max_steps <> None;
  }

(* A function, not a shared value: a single global unlimited budget would
   accumulate [steps] across every independent call, skewing the
   ticks.<phase> metrics and any Fault checkpoint arithmetic that reads
   [steps]. Each entry point gets its own counter. *)
let unlimited () = create ()

let steps b = b.steps

let elapsed b = now () -. b.started

let remaining_s b = Option.map (fun dl -> dl -. now ()) b.deadline

let limited b = b.limited

let exhaust b ~phase =
  Repair_error.raise_error
    (Budget_exhausted { phase; elapsed = elapsed b; steps = b.steps })

(* Phase strings come from a handful of literal call sites, so the
   "ticks." ^ phase counter names are interned: building the name on
   every tick would allocate in the hottest loop of every solver (the
   disabled path must allocate nothing at all — bench E19 asserts it).
   The table is domain-local so worker domains ticking concurrently
   never share (or race on) one hashtable. *)
let tick_names_key : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let tick_name phase =
  let tick_names = Domain.DLS.get tick_names_key in
  match Hashtbl.find tick_names phase with
  | name -> name
  | exception Not_found ->
    let name = "ticks." ^ phase in
    Hashtbl.add tick_names phase name;
    name

let tick ?(phase = "unphased") b =
  b.steps <- b.steps + 1;
  if Repair_obs.Metrics.enabled () || Repair_obs.Trace.enabled () then begin
    let name = tick_name phase in
    Repair_obs.Metrics.incr name;
    Repair_obs.Trace.instant name
  end;
  if Fault.armed () then
    Fault.on_checkpoint ~phase ~elapsed:(elapsed b) ~steps:b.steps;
  if b.limited then begin
    (match b.max_steps with
    | Some m when b.steps > m -> exhaust b ~phase
    | _ -> ());
    match b.deadline with
    | Some dl when now () > dl -> exhaust b ~phase
    | _ -> ()
  end

(* Parallel drivers hand each worker task a fresh unlimited budget and
   fold the spent steps back into the orchestrating budget once the
   barrier has passed — integer addition, so the sum is independent of
   completion order. No limit check here: absorption happens only on the
   unlimited path (limited budgets run sequentially so their exhaustion
   point stays bit-identical). *)
let absorb b ~steps = b.steps <- b.steps + steps

let exhausted b =
  b.limited
  && ((match b.max_steps with Some m -> b.steps >= m | None -> false)
     ||
     match b.deadline with Some dl -> now () > dl | None -> false)
