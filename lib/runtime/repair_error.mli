(** Structured error taxonomy for the whole engine.

    Every recoverable failure mode of the library is a value of {!t}, so
    callers can match on the class instead of scraping exception strings,
    and the CLI can map classes to documented exit codes. The companion
    exception {!Error} carries a {!t} through code that is written in
    exception style; [Result]-returning entry points ([_result] variants
    throughout the library) catch it at the boundary. *)

type t =
  | Parse of { source : string; line : int option; detail : string }
      (** Malformed textual input — FD strings, CSV/JSONL rows. [source]
          is a file name or a ["<...>"] pseudo-source; [line] is 1-based
          when known. *)
  | Io of { file : string; detail : string }
      (** File-system failure (missing file, permission, short read). *)
  | Schema_mismatch of { source : string; detail : string }
      (** Input whose shape contradicts its declared schema (duplicate
          attributes, drifting keys between rows, arity violations). *)
  | Budget_exhausted of { phase : string; elapsed : float; steps : int }
      (** A cooperative budget ({!Budget}) ran out inside [phase] after
          [steps] checkpoints and [elapsed] wall-clock seconds. *)
  | Intractable of { what : string; detail : string }
      (** A polynomial-time algorithm was requested outside its tractable
          class (e.g. [Poly] on the hard side of the dichotomy). *)
  | Size_limit of { what : string; limit : int; actual : int }
      (** An exponential baseline was refused because the instance exceeds
          its hard size gate. *)
  | Fault_injected of { phase : string; checkpoint : int }
      (** A deterministic test fault ({!Fault}) fired. Never produced in
          production configurations. *)
  | Corruption of { file : string; offset : int; detail : string }
      (** Durable state failed its integrity check {e before} a torn
          tail could explain it: a framed journal record whose length
          prefix, CRC-32, or payload is invalid while later bytes are
          still present. [offset] is the byte position of the last valid
          commit point — everything before it is trusted, everything
          after it has been quarantined to a [.corrupt] sidecar. Replay
          never proceeds past [offset]. *)

exception Error of t

(** [raise_error e] raises {!Error}[ e]. *)
val raise_error : t -> 'a

(** [guard f] runs [f ()] and catches {!Error}. *)
val guard : (unit -> 'a) -> ('a, t) result

(** [class_name e] is a stable kebab-case tag for the error class
    (["parse"], ["budget-exhausted"], ...). *)
val class_name : t -> string

(** [exit_code e] is the documented CLI exit code for the class:
    parse = 2, io = 3, schema-mismatch = 4, budget-exhausted = 5,
    intractable = 6, size-limit = 7, fault-injected = 8,
    corruption = 11. Code 1 is reserved for unexpected internal errors,
    0 for success; 9 (batch quarantine) and 10 (serve drain
    cancellations) are whole-run outcomes owned by the CLI. *)
val exit_code : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [is_degradable e] — may a driver respond to [e] by falling back to a
    cheaper certified algorithm? True for budget exhaustion, size limits
    and injected faults; false for input errors and intractability. *)
val is_degradable : t -> bool
