(** Deterministic fault injection for testing degradation paths.

    Real budget exhaustion depends on wall-clock time and machine speed;
    tests need every fallback edge of the drivers to fire {e exactly} and
    {e reproducibly}. This module arms a single global fault that fires at
    the [N]th budget checkpoint ({!Budget.tick}), optionally restricted to
    checkpoints of one phase. Because checkpoint counts are a pure
    function of the input instance, an armed fault is fully
    deterministic.

    Faults are one-shot: once fired, the fault disarms itself {e and
    resets the checkpoint counter} — after a fire, {!armed} is [false]
    and {!checkpoints} reads [0], exactly as after {!disarm} — so a
    driver's fallback algorithm runs to completion even if it ticks the
    same phase again.

    Single-writer contract: the injector belongs to the domain that
    called {!arm}. Checkpoints reached from any other domain (worker
    tasks in a [Repair_par.Pool] tick their own budgets) neither count
    nor fire — enforced inside {!on_checkpoint} itself, so even direct
    calls to the hook from a worker domain are inert.

    Not thread-safe beyond that contract by design — it is test-only
    machinery. *)

type mode =
  | Fail  (** raise {!Repair_error.Fault_injected}, simulating a crash *)
  | Exhaust
      (** raise {!Repair_error.Budget_exhausted}, simulating a timeout *)

(** [arm ?phase ~at mode] arms the injector: the fault fires at the
    [at]-th matching checkpoint (1-based) after this call. With [?phase],
    only checkpoints ticked under that phase count.

    @raise Invalid_argument if [at < 1]. *)
val arm : ?phase:string -> at:int -> mode -> unit

(** [disarm ()] cancels any armed fault and resets the checkpoint
    counter. *)
val disarm : unit -> unit

(** [armed ()] — is a fault currently armed? Cheap; polled by
    {!Budget.tick} on its fast path. *)
val armed : unit -> bool

(** [checkpoints ()] is the number of matching checkpoints seen since the
    last {!arm}. *)
val checkpoints : unit -> int

(** [with_fault ?phase ~at mode f] runs [f ()] with the fault armed and
    guarantees the injector is disarmed afterwards. *)
val with_fault : ?phase:string -> at:int -> mode -> (unit -> 'a) -> 'a

(** [on_checkpoint ~phase ~elapsed ~steps] — internal hook called by
    {!Budget.tick}; fires the armed fault when its trigger is reached. *)
val on_checkpoint : phase:string -> elapsed:float -> steps:int -> unit
