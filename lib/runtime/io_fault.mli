(** Deterministic syscall fault injection for durability paths.

    {!Fault} makes {e algorithmic} failure deterministic (budget
    exhaustion at the N-th checkpoint); this module does the same for
    the {e IO boundary}. A plan — a list of one-shot steps — is armed,
    and every write/fsync/rename/read that durability code routes
    through this shim counts against it. When an op's per-kind counter
    reaches a step's trigger, the step fires exactly once: a short
    write, a spurious [EINTR], [ENOSPC], a torn write followed by a
    simulated crash, or a silent bit flip. Disarmed (the default and
    production state), every entry point is a transparent passthrough to
    the corresponding [Unix] call with zero behavioural difference.

    Same single-writer contract as {!Fault}: the plan belongs to the
    domain that armed it; mediated ops from other domains neither count
    nor fire and behave exactly as if disarmed. Counters are per-op-kind
    ([at] = 3 on a {!Fsync} step means the third fsync, not the third
    mediated op of any kind), so a plan is a pure function of the
    program's op sequence and fires reproducibly.

    Test-only machinery, like {!Fault}. The shim itself ships in
    production builds (it is the hardened IO layer — [write_all] retries
    genuine [EINTR] and short writes from the kernel too), but arming a
    plan outside tests is never done. *)

type op =
  | Write  (** [Unix.write] / [Unix.write_substring] *)
  | Fsync  (** [Unix.fsync] *)
  | Rename  (** [Unix.rename] *)
  | Read  (** [Unix.read] *)

type kind =
  | Short_write
      (** Transfer at most half of the requested bytes (at least 1).
          On {!Read}, a short read. Passthrough on {!Fsync}/{!Rename}. *)
  | Eintr  (** Fail once with [Unix.EINTR]; no bytes transferred. *)
  | Enospc
      (** Fail with [Unix.ENOSPC]; no bytes transferred. On {!Read}
          (which cannot [ENOSPC]) the failure is [Unix.EIO]. *)
  | Torn of int
      (** [Torn keep]: transfer the first [keep] bytes (clamped to the
          request), then raise {!Crash} — a kill mid-write. On
          {!Fsync}/{!Rename}/{!Read}, crash before the operation. *)
  | Bit_flip of int
      (** [Bit_flip b]: complete the transfer, but with bit
          [b mod (len * 8)] of the payload inverted — silent media
          corruption. Passthrough on {!Fsync}/{!Rename} and empty
          transfers. The caller's buffer is never mutated on write. *)

type step = { op : op; at : int; kind : kind }
(** Fire [kind] at the [at]-th (1-based) mediated op of kind [op] since
    {!arm}. One-shot: a fired step is removed from the plan. *)

exception Crash of { op : op; n : int }
(** Simulated process death raised by {!Torn} steps: [n] is the op
    counter at the moment of death. Deliberately {e not} a
    {!Repair_error.t} — a real crash is not classifiable, and recovery
    code must never depend on catching it. *)

(** [arm plan] installs [plan] for the calling domain and zeroes all op
    counters and the fired list.
    @raise Invalid_argument if any step has [at < 1]. *)
val arm : step list -> unit

(** [disarm ()] clears the plan, counters, and fired list. *)
val disarm : unit -> unit

(** [armed ()] — does the calling domain own a non-empty plan? *)
val armed : unit -> bool

(** [fired ()] — steps that have fired since {!arm}, in firing order. *)
val fired : unit -> step list

(** [seen op] — mediated ops of kind [op] counted since {!arm} (0 when
    disarmed or called from a non-owner domain). *)
val seen : op -> int

(** [with_plan plan f] runs [f ()] with [plan] armed and guarantees the
    shim is disarmed afterwards, even on exceptions. *)
val with_plan : step list -> (unit -> 'a) -> 'a

(** {1 Shim entry points}

    Drop-in replacements for the corresponding [Unix] functions,
    identical in every respect when no step fires. *)

val write : Unix.file_descr -> Bytes.t -> int -> int -> int
val write_substring : Unix.file_descr -> string -> int -> int -> int
val fsync : Unix.file_descr -> unit
val rename : string -> string -> unit
val read : Unix.file_descr -> Bytes.t -> int -> int -> int

(** {1 Hardened helpers} *)

(** [write_all fd buf] writes all of [buf], absorbing short writes and
    retrying [EINTR] — injected or genuine. Other [Unix_error]s and
    {!Crash} propagate. *)
val write_all : Unix.file_descr -> Bytes.t -> unit

(** [read_file path] reads the whole file through the shim, retrying
    [EINTR] and absorbing short reads.
    @raise Repair_error.Error [(Io _)] on open/read failure. *)
val read_file : string -> string

(** [write_file_atomic path text] writes [text] durably and atomically:
    [path ^ ".tmp"] is created, filled via {!write_all}, fsynced,
    closed, then renamed over [path]. Readers of [path] observe either
    the old contents or the complete new contents — never a torn
    intermediate state; a {!Crash} at any step leaves [path] untouched.
    @raise Repair_error.Error [(Io _)] on any [Unix_error] (after
    [EINTR] retry). *)
val write_file_atomic : string -> string -> unit
