(* Prometheus text exposition, format version 0.0.4: one family per
   metric, a [# TYPE] line before its samples, histograms as cumulative
   [_bucket{le="..."}] series plus [_sum]/[_count]. Families are
   suffixed by kind ([_total] / bare / [_seconds]) so a counter and a
   histogram sharing a registry name can never collide after
   sanitization. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize name = String.map (fun c -> if is_name_char c then c else '_') name

(* Deterministic float rendering: integers without an exponent, the rest
   via %.9g — enough digits to keep distinct bucket edges distinct. *)
let fmt_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let render ?(namespace = "repair") ~counters ~gauges ~histograms () =
  let buf = Buffer.create 4096 in
  let fam name suffix = namespace ^ "_" ^ sanitize name ^ suffix in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun (name, v) ->
      let n = fam name "_total" in
      line "# TYPE %s counter\n%s %d\n" n n v)
    counters;
  List.iter
    (fun (name, v) ->
      let n = fam name "" in
      line "# TYPE %s gauge\n%s %s\n" n n (fmt_float v))
    gauges;
  List.iter
    (fun (name, h) ->
      let n = fam name "_seconds" in
      line "# TYPE %s histogram\n" n;
      (* Sparse but still cumulative: only buckets that grew the running
         count are emitted, plus the mandatory +Inf bucket. *)
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          let _, le = Histogram.bounds i in
          line "%s_bucket{le=\"%s\"} %d\n" n (fmt_float le) !cum)
        (Histogram.buckets h);
      line "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h);
      line "%s_sum %s\n" n (fmt_float (Histogram.sum h));
      line "%s_count %d\n" n (Histogram.count h))
    histograms;
  Buffer.contents buf

(* {2 Grammar checker} *)

let well_formed_name s =
  String.length s > 0
  && (let c = s.[0] in not (c >= '0' && c <= '9'))
  && String.for_all is_name_char s

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s

(* "name{k=\"v\",...} value" or "name value" -> (name, labels, value).
   Minimal label parsing: no escaped quotes, which the writer never
   emits. *)
let parse_sample s =
  let ( let* ) o f = Option.bind o f in
  match String.index_opt s '{' with
  | Some lb ->
    let* rb = String.index_opt s '}' in
    if rb < lb then None
    else
      let name = String.sub s 0 lb in
      let labels_s = String.sub s (lb + 1) (rb - lb - 1) in
      let rest = String.sub s (rb + 1) (String.length s - rb - 1) in
      let* labels =
        String.split_on_char ',' labels_s
        |> List.filter (fun p -> String.trim p <> "")
        |> List.fold_left
             (fun acc p ->
               let* acc = acc in
               let* eq = String.index_opt p '=' in
               let k = String.sub p 0 eq in
               let v = String.sub p (eq + 1) (String.length p - eq - 1) in
               let n = String.length v in
               if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then
                 Some ((k, String.sub v 1 (n - 2)) :: acc)
               else None)
             (Some [])
      in
      let* value = parse_value (String.trim rest) in
      Some (name, List.rev labels, value)
  | None -> (
    match String.index_opt s ' ' with
    | None -> None
    | Some sp ->
      let name = String.sub s 0 sp in
      let* value =
        parse_value (String.trim (String.sub s sp (String.length s - sp)))
      in
      Some (name, [], value))

type hist_acc = {
  mutable hbuckets : (float * float) list; (* (le, cumulative), reversed *)
  mutable hsum : float option;
  mutable hcount : float option;
}

let strip_suffix s suffix =
  let n = String.length s and m = String.length suffix in
  if n > m && String.sub s (n - m) m = suffix then Some (String.sub s 0 (n - m))
  else None

let check text =
  let ( let* ) r f = Result.bind r f in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, hist_acc) Hashtbl.t = Hashtbl.create 16 in
  let err ln fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" ln s)) fmt in
  let check_line ln line =
    if line = "" then Ok ()
    else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then
      match
        String.split_on_char ' ' (String.sub line 7 (String.length line - 7))
        |> List.filter (fun s -> s <> "")
      with
      | [ name; kind ] ->
        if not (well_formed_name name) then err ln "bad metric name %S" name
        else if
          not
            (List.mem kind
               [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
        then err ln "unknown type %S" kind
        else if Hashtbl.mem types name then err ln "duplicate TYPE for %S" name
        else begin
          Hashtbl.replace types name kind;
          if kind = "histogram" then
            Hashtbl.replace hists name
              { hbuckets = []; hsum = None; hcount = None };
          Ok ()
        end
      | _ -> err ln "malformed TYPE line"
    else if line.[0] = '#' then Ok () (* HELP or comment *)
    else
      match parse_sample line with
      | None -> err ln "malformed sample %S" line
      | Some (name, labels, value) ->
        if not (well_formed_name name) then err ln "bad metric name %S" name
        else
          (* Resolve the family: a histogram's series use suffixed names. *)
          let hist_base suffix =
            Option.bind (strip_suffix name suffix) (fun base ->
                match Hashtbl.find_opt types base with
                | Some "histogram" -> Some base
                | _ -> None)
          in
          (match (hist_base "_bucket", hist_base "_sum", hist_base "_count") with
          | Some base, _, _ -> (
            let h = Hashtbl.find hists base in
            match List.assoc_opt "le" labels with
            | None -> err ln "%s_bucket without le label" base
            | Some le_s -> (
              match parse_value le_s with
              | None -> err ln "unparseable le %S" le_s
              | Some le -> (
                match h.hbuckets with
                | (prev_le, _) :: _ when le <= prev_le ->
                  err ln "le not increasing in %s (%s after %s)" base le_s
                    (fmt_float prev_le)
                | (_, prev_c) :: _ when value < prev_c ->
                  err ln "bucket counts not cumulative in %s" base
                | _ ->
                  h.hbuckets <- (le, value) :: h.hbuckets;
                  Ok ())))
          | None, Some base, _ ->
            let h = Hashtbl.find hists base in
            h.hsum <- Some value;
            Ok ()
          | None, None, Some base ->
            let h = Hashtbl.find hists base in
            h.hcount <- Some value;
            Ok ()
          | None, None, None ->
            if not (Hashtbl.mem types name) then
              err ln "sample %S before its TYPE line" name
            else Ok ())
  in
  let lines = String.split_on_char '\n' text in
  let* () =
    List.fold_left
      (fun acc (ln, line) -> Result.bind acc (fun () -> check_line ln line))
      (Ok ())
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Hashtbl.fold
    (fun base h acc ->
      let* () = acc in
      match (h.hbuckets, h.hsum, h.hcount) with
      | [], _, _ -> Error (Printf.sprintf "histogram %s has no buckets" base)
      | _, None, _ -> Error (Printf.sprintf "histogram %s missing _sum" base)
      | _, _, None -> Error (Printf.sprintf "histogram %s missing _count" base)
      | (last_le, last_c) :: _, _, Some count ->
        if last_le <> infinity then
          Error (Printf.sprintf "histogram %s missing +Inf bucket" base)
        else if last_c <> count then
          Error
            (Printf.sprintf "histogram %s: _count %s <> +Inf bucket %s" base
               (fmt_float count) (fmt_float last_c))
        else Ok ())
    hists (Ok ())
