type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Floats must stay recognizable as floats after a round trip (and by the
   sed masks of the cram tests), so the literal always carries '.' or an
   exponent. JSON has no literal for non-finite numbers. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let indent n = Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string b (float_literal f)
      else Buffer.add_string b "null"
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          if pretty then indent (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      if pretty then indent depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          if pretty then indent (depth + 1);
          escape_string b k;
          Buffer.add_string b (if pretty then ": " else ":");
          go (depth + 1) item)
        fields;
      newline ();
      if pretty then indent depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'u' ->
          let read_hex4 at =
            if at + 4 > n then fail "truncated \\u escape"
            else
              match int_of_string_opt ("0x" ^ String.sub s at 4) with
              | Some code -> code
              | None -> fail "bad \\u escape"
          in
          let code = read_hex4 (!pos + 1) in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* High surrogate: the low half must follow as another \uXXXX
               escape; the pair encodes one astral-plane scalar (RFC 8259
               §7 / RFC 7159). Emitting the two halves separately would
               produce CESU-8, not UTF-8. *)
            let lo_at = !pos + 5 in
            if lo_at + 1 >= n || s.[lo_at] <> '\\' || s.[lo_at + 1] <> 'u'
            then fail "unpaired high surrogate";
            let lo = read_hex4 (lo_at + 2) in
            if not (lo >= 0xDC00 && lo <= 0xDFFF) then
              fail "unpaired high surrogate";
            let scalar =
              0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
            in
            utf8_of_code b scalar;
            pos := lo_at + 5
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail "unpaired low surrogate"
          else begin
            utf8_of_code b code;
            pos := !pos + 4
          end
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let float_value = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let int_value = function Int i -> Some i | _ -> None
let string_value = function String s -> Some s | _ -> None
let list_value = function List l -> Some l | _ -> None
