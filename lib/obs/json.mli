(** A minimal JSON tree: just enough for metrics snapshots and the
    [BENCH_*.json] benchmark records, with zero dependencies.

    The printer always emits valid JSON — floats carry a decimal point or
    exponent (so masking tools can find them), and non-finite floats
    become [null]. The parser accepts anything the printer emits plus
    ordinary interchange JSON (escapes, [\uXXXX], nested containers). It
    is not a validating parser for adversarial input; benchmark files are
    trusted local artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?pretty v] prints [v]; [pretty] (default [false]) indents
    with two spaces. Object keys keep their construction order. *)
val to_string : ?pretty:bool -> t -> string

(** [of_string s] parses one JSON value (surrounding whitespace allowed).
    Numbers without ['.'], ['e'] or ['E'] parse as [Int]. *)
val of_string : string -> (t, string) result

(** [member k v] — the value under key [k] when [v] is an [Obj]. *)
val member : string -> t -> t option

(** Coercions; [float_value] accepts both [Int] and [Float]. *)
val float_value : t -> float option

val int_value : t -> int option
val string_value : t -> string option
val list_value : t -> t list option
