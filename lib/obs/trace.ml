type kind = Begin | End | Instant

type event = { seq : int; ts : float; kind : kind; name : string }

let default_capacity = 65536

let enabled_flag = ref false

(* Single-writer contract: the ring is plain mutable state owned by the
   domain that called {!enable} (re-pinned on every [enable]). Events
   emitted from any other domain are silently discarded — worker domains
   in a {!Repair_par.Pool} run with tracing effectively off, which keeps
   the ring race-free without locking the hot path. *)
let owner = ref (Domain.self ())

let owned () = Domain.self () = !owner

(* The ring: [ring.(i)] for [i < count] counted back from [head] holds
   the newest events. [None] slots only exist before the ring first
   fills; storing options keeps the module free of dummy events. *)
let ring : event option array ref = ref (Array.make default_capacity None)

let head = ref 0 (* next slot to write *)

let count = ref 0 (* live events, <= capacity *)

let seq_counter = ref 0

let dropped_counter = ref 0

let epoch = ref 0.0

let last_ts = ref 0.0

let now = Unix.gettimeofday

let reset_clock () =
  epoch := now ();
  last_ts := 0.0

let reset () =
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  count := 0;
  seq_counter := 0;
  dropped_counter := 0;
  reset_clock ()

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  if Array.length !ring <> capacity then ring := Array.make capacity None;
  reset ();
  owner := Domain.self ();
  enabled_flag := true

let disable () = enabled_flag := false

let enabled () = !enabled_flag

let capacity () = Array.length !ring

let dropped () = !dropped_counter

(* O(1): one slot write, two index updates. The wall clock may step
   backwards (NTP); clamping to [last_ts] keeps the stream monotone,
   which the Chrome viewers and the validator both require. *)
let emit kind name =
  if !enabled_flag && owned () then begin
    let raw = now () -. !epoch in
    let ts = if raw > !last_ts then raw else !last_ts in
    last_ts := ts;
    let cap = Array.length !ring in
    if !count = cap then incr dropped_counter else incr count;
    !ring.(!head) <- Some { seq = !seq_counter; ts; kind; name };
    incr seq_counter;
    head := if !head + 1 = cap then 0 else !head + 1
  end

let begin_ name = emit Begin name
let end_ name = emit End name
let instant name = emit Instant name

let events () =
  let cap = Array.length !ring in
  let oldest = (!head - !count + cap) mod cap in
  List.init !count (fun i ->
      match !ring.((oldest + i) mod cap) with
      | Some e -> e
      | None -> assert false (* the [count] newest slots are filled *))
