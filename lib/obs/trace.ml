type kind = Begin | End | Instant

type event = {
  seq : int;
  ts : float;
  kind : kind;
  name : string;
  req : string option;
  tid : int;
}

let default_capacity = 65536

let tid_main = 1

let enabled_flag = ref false

(* Single-writer contract: the ring is plain mutable state owned by the
   domain that called {!enable} (re-pinned on every [enable]). Events
   emitted from any other domain are silently discarded — unless a
   capture buffer is installed ({!with_capture}), in which case they are
   buffered domain-locally and handed back to the owner, which may
   {!inject} them. Either way the ring itself is only ever touched by
   its owner, race-free without locking the hot path. *)
let owner = ref (Domain.self ())

let owned () = Domain.self () = !owner

(* The ring: [ring.(i)] for [i < count] counted back from [head] holds
   the newest events. [None] slots only exist before the ring first
   fills; storing options keeps the module free of dummy events. *)
let ring : event option array ref = ref (Array.make default_capacity None)

let head = ref 0 (* next slot to write *)

let count = ref 0 (* live events, <= capacity *)

let seq_counter = ref 0

let dropped_counter = ref 0

(* [epoch] is written only by [enable]/[reset] on the owner domain and
   read by capture buffers on workers; pool batches never overlap an
   enable, so worker reads see a stable value and all domains share one
   timeline. *)
let epoch = ref 0.0

let last_ts = ref 0.0

let now = Unix.gettimeofday

let reset_clock () =
  epoch := now ();
  last_ts := 0.0

let reset () =
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  count := 0;
  seq_counter := 0;
  dropped_counter := 0;
  reset_clock ()

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  if Array.length !ring <> capacity then ring := Array.make capacity None;
  reset ();
  owner := Domain.self ();
  enabled_flag := true

let disable () = enabled_flag := false

let enabled () = !enabled_flag

let capacity () = Array.length !ring

let dropped () = !dropped_counter

(* {2 Request context}

   A domain-local request id attached to every event the domain emits
   while the context is set. Domain-local so that a worker executing a
   request's task stamps that request's id, independent of what the
   owner domain is doing concurrently. *)

let ctx_key = Domain.DLS.new_key (fun () -> (None : string option))

let current_request () = Domain.DLS.get ctx_key

let with_request id f =
  let saved = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (Some id);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key saved) f

(* {2 Capture buffers}

   While a buffer is installed (domain-locally), [emit] appends to it
   instead of the ring — from any domain, since the buffer is private to
   the emitting domain. Buffered events get their own monotone clamp
   ([last]) and provisional [seq]/[tid]; both are reassigned by
   {!inject} on the owner. Presence of the buffer, not the enabled
   flag, gates buffering: the installer ({!Repair_par.Pool}) checks the
   flag on the submitting domain, which keeps [emit] free of
   cross-domain flag reads. *)

type buf = { mutable evs : event list; mutable last : float; mutable n : int }

let buf_key = Domain.DLS.new_key (fun () -> (None : buf option))

let ring_push e =
  let cap = Array.length !ring in
  if !count = cap then incr dropped_counter else incr count;
  !ring.(!head) <- Some e;
  incr seq_counter;
  head := if !head + 1 = cap then 0 else !head + 1

(* O(1): one slot write, two index updates. The wall clock may step
   backwards (NTP); clamping to [last_ts] keeps the stream monotone per
   writer, which the Chrome viewers and the validator both require. *)
let emit kind name =
  match Domain.DLS.get buf_key with
  | Some b ->
    let raw = now () -. !epoch in
    let ts = if raw > b.last then raw else b.last in
    b.last <- ts;
    b.evs <-
      { seq = b.n; ts; kind; name; req = Domain.DLS.get ctx_key; tid = 0 }
      :: b.evs;
    b.n <- b.n + 1
  | None ->
    if !enabled_flag && owned () then begin
      let raw = now () -. !epoch in
      let ts = if raw > !last_ts then raw else !last_ts in
      last_ts := ts;
      ring_push
        { seq = !seq_counter; ts; kind; name;
          req = Domain.DLS.get ctx_key; tid = tid_main }
    end

let begin_ name = emit Begin name
let end_ name = emit End name
let instant name = emit Instant name

let with_capture sink f =
  let saved = Domain.DLS.get buf_key in
  let b = { evs = []; last = 0.0; n = 0 } in
  Domain.DLS.set buf_key (Some b);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set buf_key saved;
      sink (List.rev b.evs))
    f

let inject ?(tid = 2) events =
  if !enabled_flag && owned () then
    List.iter
      (fun e -> ring_push { e with seq = !seq_counter; tid })
      events

let events () =
  let cap = Array.length !ring in
  let oldest = (!head - !count + cap) mod cap in
  List.init !count (fun i ->
      match !ring.((oldest + i) mod cap) with
      | Some e -> e
      | None -> assert false (* the [count] newest slots are filled *))
