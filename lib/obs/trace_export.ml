let us_per_s = 1e6

let ph_of_kind = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"

let kind_of_ph = function
  | "B" -> Some Trace.Begin
  | "E" -> Some Trace.End
  | "i" | "I" -> Some Trace.Instant
  | _ -> None

let event_json (e : Trace.event) =
  let base =
    [ ("name", Json.String e.name);
      ("cat", Json.String "repair");
      ("ph", Json.String (ph_of_kind e.kind));
      ("ts", Json.Float (e.ts *. us_per_s));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid) ]
  in
  let base =
    match e.req with
    | Some r -> base @ [ ("args", Json.Obj [ ("req", Json.String r) ]) ]
    | None -> base
  in
  (* Instant events must carry a scope; "t" (thread) is the narrowest. *)
  Json.Obj
    (if e.kind = Trace.Instant then base @ [ ("s", Json.String "t") ]
     else base)

let to_chrome events ~dropped =
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("dropped", Json.Int dropped) ]) ]

let number_value = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let of_chrome j =
  let ( let* ) r f = Result.bind r f in
  let* evs =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "\"traceEvents\" is not an array"
    | None -> Error "missing \"traceEvents\""
  in
  let dropped =
    match Option.bind (Json.member "otherData" j) (Json.member "dropped") with
    | Some (Json.Int n) when n >= 0 -> n
    | _ -> 0
  in
  let parse_one i ev =
    let field name = Json.member name ev in
    match
      ( Option.bind (field "name") Json.string_value,
        Option.bind (Option.bind (field "ph") Json.string_value) kind_of_ph,
        Option.bind (field "ts") number_value )
    with
    | Some name, Some kind, Some ts_us ->
      let tid =
        match Option.bind (field "tid") number_value with
        | Some f -> int_of_float f
        | None -> Trace.tid_main
      in
      let req =
        Option.bind
          (Option.bind (field "args") (Json.member "req"))
          Json.string_value
      in
      Ok { Trace.seq = i; ts = ts_us /. us_per_s; kind; name; req; tid }
    | None, _, _ -> Error (Printf.sprintf "event %d: missing \"name\"" i)
    | _, None, _ ->
      Error (Printf.sprintf "event %d: missing or unknown \"ph\"" i)
    | _, _, None -> Error (Printf.sprintf "event %d: missing \"ts\"" i)
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest -> (
      match parse_one i ev with
      | Ok e -> go (i + 1) (e :: acc) rest
      | Error _ as e -> e)
  in
  let* events = go 0 [] evs in
  Ok (events, dropped)

(* Each [tid] is an independent lane (its own writer, its own monotone
   clamp, its own span stack), so validation partitions by [tid] —
   preserving in-lane order — and checks every lane separately. *)
let by_tid events =
  let tbl : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt tbl e.tid with
      | Some r -> r := e :: !r
      | None ->
        Hashtbl.add tbl e.tid (ref [ e ]);
        order := e.tid :: !order)
    events;
  List.rev_map (fun tid -> (tid, List.rev !(Hashtbl.find tbl tid))) !order
  |> List.rev

let validate ?(dropped = 0) events =
  let ( let* ) r f = Result.bind r f in
  let validate_lane events =
    let* _ =
      let rec mono prev = function
        | [] -> Ok ()
        | (e : Trace.event) :: rest ->
          if e.ts < prev then
            Error
              (Printf.sprintf "timestamp regression at %S: %g < %g" e.name e.ts
                 prev)
          else mono e.ts rest
      in
      mono neg_infinity events
    in
    (* Eviction removes a strict prefix of the stream, so a lossy trace may
       open with orphaned [End]s and close with unmatched [Begin]s, but an
       [End] can never disagree with the innermost surviving [Begin]. *)
    let rec balance stack = function
      | [] ->
        if stack = [] || dropped > 0 then Ok ()
        else
          Error
            (Printf.sprintf "unclosed span %S at end of trace" (List.hd stack))
      | (e : Trace.event) :: rest -> (
        match (e.kind, stack) with
        | Trace.Instant, _ -> balance stack rest
        | Trace.Begin, _ -> balance (e.name :: stack) rest
        | Trace.End, top :: below ->
          if String.equal top e.name then balance below rest
          else
            Error
              (Printf.sprintf "end of %S inside span %S" e.name top)
        | Trace.End, [] ->
          if dropped > 0 then balance [] rest
          else Error (Printf.sprintf "end of %S with no open span" e.name))
    in
    balance [] events
  in
  List.fold_left
    (fun acc (_, lane) -> Result.bind acc (fun () -> validate_lane lane))
    (Ok ()) (by_tid events)

type hotspot = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  max_s : float;
}

type open_span = {
  span_name : string;
  t0 : float;
  mutable child_s : float;
}

let hotspots events =
  let tbl : (string, hotspot ref) Hashtbl.t = Hashtbl.create 16 in
  let touch name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref { name; count = 0; total_s = 0.0; self_s = 0.0; max_s = 0.0 } in
      Hashtbl.add tbl name r;
      r
  in
  let instants : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  (* One span stack per tid: worker-lane spans pair up within their own
     lane, never against the owner lane they interleave with. *)
  let stacks : (int, open_span list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add stacks tid r;
      r
  in
  List.iter
    (fun (e : Trace.event) ->
      let stack = stack_of e.tid in
      match e.kind with
      | Trace.Instant -> (
        match Hashtbl.find_opt instants e.name with
        | Some r -> incr r
        | None -> Hashtbl.add instants e.name (ref 1))
      | Trace.Begin ->
        stack := { span_name = e.name; t0 = e.ts; child_s = 0.0 } :: !stack
      | Trace.End -> (
        match !stack with
        | top :: below when String.equal top.span_name e.name ->
          stack := below;
          let dur = e.ts -. top.t0 in
          let self = Float.max 0.0 (dur -. top.child_s) in
          (match below with
          | parent :: _ -> parent.child_s <- parent.child_s +. dur
          | [] -> ());
          let r = touch e.name in
          let h = !r in
          r :=
            { h with
              count = h.count + 1;
              total_s = h.total_s +. dur;
              self_s = h.self_s +. self;
              max_s = Float.max h.max_s dur }
        | _ -> (* orphaned end in a lossy trace: skip *) ()))
    events;
  Hashtbl.iter
    (fun name n ->
      if not (Hashtbl.mem tbl name) then
        Hashtbl.add tbl name
          (ref { name; count = !n; total_s = 0.0; self_s = 0.0; max_s = 0.0 }))
    instants;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.self_s a.self_s with
         | 0 -> String.compare a.name b.name
         | c -> c)

let pp_hotspots ~top fmt hs =
  let shown = List.filteri (fun i _ -> i < top) hs in
  Format.fprintf fmt "%-40s %8s %12s %12s %12s@."
    "NAME" "COUNT" "TOTAL_MS" "SELF_MS" "MAX_MS";
  List.iter
    (fun h ->
      Format.fprintf fmt "%-40s %8d %12.3f %12.3f %12.3f@."
        h.name h.count (h.total_s *. 1000.0) (h.self_s *. 1000.0)
        (h.max_s *. 1000.0))
    shown;
  let spans = List.fold_left (fun acc h -> acc + h.count) 0 hs in
  let self = List.fold_left (fun acc h -> acc +. h.self_s) 0.0 hs in
  Format.fprintf fmt "total: %d events across %d names, %.3f ms self time@."
    spans (List.length hs) (self *. 1000.0)
