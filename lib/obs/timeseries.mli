(** Rolling time-series over a cumulative metrics source: a
    fixed-capacity ring of periodic {e delta} windows, turning
    since-boot totals into windowed rates, per-window histograms (hence
    rolling quantiles), and sampled gauges.

    The series never touches {!Metrics} global state directly — it reads
    a {!source} of cumulative counters/histograms plus instantaneous
    gauges, keeps a baseline snapshot, and on each {!tick} that crosses
    the interval boundary closes one window holding the deltas since the
    baseline ({!Histogram.diff} for histograms) and the gauges sampled
    at close. Old windows fall off the ring.

    {b Determinism.} The clock is injectable: under a fake clock and a
    deterministic source, window boundaries, deltas, and {!to_json}
    output are all pure functions of the tick sequence — two series
    driven identically render byte-identical JSON. {b Stalls} close a
    single wide window ([span_s] = the stalled multiple of the
    interval), not a backlog of empty windows, so rates — which divide
    by summed [span_s] — are unaffected by sampler jitter.

    Single-domain: a series belongs to the domain that ticks it (the
    server poll loop); it is not thread-safe. *)

type source = {
  counters : unit -> (string * int) list;  (** cumulative, monotone *)
  histograms : unit -> (string * Histogram.t) list;
      (** cumulative; the live instances, copied internally *)
  gauges : unit -> (string * float) list;  (** instantaneous levels *)
}

type window = {
  seq : int;  (** 0-based close index, monotone across evictions *)
  t_start : float;  (** clock value at window open *)
  span_s : float;  (** window width; a multiple of the interval *)
  counters : (string * int) list;  (** non-zero deltas, sorted by name *)
  histograms : (string * Histogram.t) list;
      (** non-empty per-window deltas, sorted by name *)
  gauges : (string * float) list;  (** sampled at close, sorted by name *)
}

type t

(** Ring capacity used when [create] is not given one: [60] windows. *)
val default_windows : int

(** [create ?windows ~interval_s ?clock source] — an empty series that
    will close a window every [interval_s] seconds (per [clock], default
    [Unix.gettimeofday]), keeping the last [windows] (default
    {!default_windows}). The baseline is snapshotted immediately, so the
    first window's deltas count from creation.

    @raise Invalid_argument if [interval_s <= 0] or [windows < 1]. *)
val create :
  ?windows:int -> interval_s:float -> ?clock:(unit -> float) -> source -> t

(** [of_metrics ?gauges ?windows ~interval_s ?clock ()] — a series over
    the current domain's {!Metrics} registry (its counters and
    histograms), plus the caller's [gauges] (default none). *)
val of_metrics :
  ?gauges:(unit -> (string * float) list) ->
  ?windows:int ->
  interval_s:float ->
  ?clock:(unit -> float) ->
  unit ->
  t

(** [tick t] — close at most one window if the interval has elapsed;
    otherwise a cheap no-op (one clock read). Call from the sampling
    loop as often as convenient. *)
val tick : t -> unit

(** {1 Reading} *)

val interval_s : t -> float
val capacity : t -> int

(** Windows currently held, oldest first. *)
val windows : t -> window list

val n_windows : t -> int

(** Total seconds covered by the held windows. *)
val span_total : t -> float

(** [rate t name] — counter [name]'s increments per second over the held
    windows (summed deltas / summed spans); 0 with no windows. *)
val rate : t -> string -> float

(** [rolling t name] — the merge of histogram [name]'s per-window deltas
    across the held windows: the rolling distribution, for tail
    quantiles over the ring's span rather than since boot. *)
val rolling : t -> string -> Histogram.t

(** [last_gauge t name] — gauge [name] as sampled at the newest window's
    close, if any. *)
val last_gauge : t -> string -> float option

(** The series as JSON: [{"interval_s", "capacity", "span_s", "rates":
    {name: per-second}, "rolling": {name: {!Histogram.summary_json}},
    "gauges": {name: latest}, "windows": [{"seq", "t_start", "span_s",
    "counters", "histograms", "gauges"}, ...]}] — every object sorted by
    name, windows oldest first. Deterministic given a deterministic
    clock and source. *)
val to_json : t -> Json.t
