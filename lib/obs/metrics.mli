(** Process-wide observability registry: named monotone counters,
    hierarchical wall-clock spans, and per-span latency histograms,
    reported into by the solver stack.

    Everything is designed so that instrumentation can live permanently in
    hot paths:

    - recording is O(1) — a hashtable upsert for counters, a stack
      push/pop plus two clock reads for spans;
    - when the registry is {e disabled} (the initial state) every
      operation is a single branch and records nothing, so a solver run
      with metrics off is observationally identical to one with metrics
      on (the solvers never read the registry);
    - {!snapshot} serializes the whole registry to {!Json.t} without
      disturbing it.

    Spans nest dynamically: [with_span "a" (fun () -> with_span "b" f)]
    records [b] as a child of [a], and repeated entries into the same
    child aggregate (count + total duration) rather than append.

    {b Domains.} Each domain records into its own registry (domain-local
    storage); the enable flag is shared. Nothing ever mutates another
    domain's registry, so concurrent recording is race-free by
    construction. A parallel runner moves worker results back into its
    own registry with {!capture} (run the work under a fresh registry)
    and {!merge} (fold a captured registry into the current one) — at a
    deterministic point and in a deterministic order, so a parallel run
    aggregates to exactly the sequential totals: counters are integer
    sums, histograms merge exactly bucket-by-bucket, and span trees graft
    under the span open at the merge site.

    {!with_span} is also the bridge into the event tracer: when {!Trace}
    is enabled (independently of this registry) every span additionally
    emits a matched [Begin]/[End] event pair, so one instrumentation
    point feeds counters, the span tree, latency histograms, and the
    trace ring at once. *)

(** {1 Switching} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] forgets all counters and spans (and abandons any spans
    currently open), returning the registry to its pristine state. The
    enabled flag is left as-is. *)
val reset : unit -> unit

(** {1 Counters} *)

(** [incr ?by name] adds [by] (default 1) to counter [name], creating it
    at zero first. No-op while disabled. Counters are monotone: [by] must
    be non-negative.

    @raise Invalid_argument on negative [by]. *)
val incr : ?by:int -> string -> unit

(** [counter name] — current value; 0 for never-incremented counters.
    The synthetic ["trace.dropped"] counter reads through to
    {!Trace.dropped} (ring-buffer evictions) on top of any stored
    value. *)
val counter : string -> int

(** All counters, sorted by name. ["trace.dropped"] is included whenever
    {!Trace.dropped} is non-zero, even though nothing [incr]s it. *)
val counters : unit -> (string * int) list

(** {1 Spans} *)

(** [with_span name f] runs [f] inside span [name], nested under the
    innermost open span. The duration is recorded even when [f] raises
    (budget exhaustion unwinds through spans routinely) — into the span
    tree {e and} the latency histogram of [name]. When {!Trace} is
    enabled a matched [Begin]/[End] event pair is emitted regardless of
    whether this registry is. While both are disabled this is exactly
    [f ()]. *)
val with_span : string -> (unit -> 'a) -> 'a

type span = {
  name : string;
  count : int;  (** completed entries *)
  total_s : float;  (** summed wall-clock duration, seconds *)
  children : span list;
}

(** Top-level spans recorded so far, children sorted by name at every
    level. Spans still open (e.g. snapshot taken from inside [with_span])
    report only their completed entries. *)
val spans : unit -> span list

(** [span_total path] — total seconds under the ['/']-separated path of
    span names, e.g. ["s-exact/conflict-graph.build"]. [None] if the path
    was never recorded. *)
val span_total : string -> float option

(** {1 Histograms} *)

(** [observe name seconds] adds one sample to the latency histogram of
    [name], creating it first. No-op while disabled. {!with_span} calls
    this automatically with the span duration, so explicit calls are
    only needed for durations measured outside a span (e.g. batch job
    wall time). *)
val observe : string -> float -> unit

(** [histogram name] — the live histogram, if any samples were ever
    recorded under [name]. The returned value is the registry's own;
    {!Histogram.copy} it before mutating. *)
val histogram : string -> Histogram.t option

(** All histograms, sorted by name. *)
val histograms : unit -> (string * Histogram.t) list

(** {1 Cross-domain capture}

    The bridge used by {!Repair_par.Pool}: a worker runs each task under
    {!capture}, and the pool {!merge}s the captured registries back on
    the submitting domain, in task-index order, once all tasks of a batch
    have finished. *)

(** A detached registry holding everything one {!capture} recorded. *)
type captured

(** [capture f] runs [f] with a fresh, empty registry installed for the
    current domain (the previous registry is restored afterwards, even on
    exceptions — the exception is returned, not raised, so callers can
    merge first and re-raise at a deterministic point). Everything [f]
    records lands in the returned {!captured} value. The enabled flag is
    shared, not per-registry: capture under a disabled registry records
    nothing, same as inline execution. *)
val capture : (unit -> 'a) -> ('a, exn) result * captured

(** [merge c] folds [c] into the current domain's registry: counters add,
    histograms merge exactly ({!Histogram.merge}), and [c]'s top-level
    spans graft under the innermost span currently open here (so merged
    spans nest exactly where the work would have, had it run inline).
    Merging the captures of a batch in task-index order reproduces the
    sequential aggregate bit-for-bit on every integer quantity. *)
val merge : captured -> unit

(** [captured_counters c] — the counters [c] recorded, sorted by name.
    Unlike {!counters}, no synthetic ["trace.dropped"] read-through: the
    view is exactly what the captured work incremented. *)
val captured_counters : captured -> (string * int) list

(** [captured_spans c] — the span forest [c] recorded, children sorted
    by name at every level. Reading does not consume [c]; it can still
    be {!merge}d. *)
val captured_spans : captured -> span list

(** {1 Snapshots} *)

(** The whole registry as JSON:
    [{ "counters": { name: int, ... },
       "spans": [ { "name", "count", "total_ms", "children" }, ... ],
       "histograms": { name: {!Histogram.summary_json}, ... } }]
    with counters and histograms sorted by name and span durations in
    milliseconds. Deterministic except for the timing values (and the
    histogram bucket indices they fall in). *)
val snapshot : unit -> Json.t
