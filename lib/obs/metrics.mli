(** Process-wide observability registry: named monotone counters and
    hierarchical wall-clock spans, reported into by the solver stack.

    Everything is designed so that instrumentation can live permanently in
    hot paths:

    - recording is O(1) — a hashtable upsert for counters, a stack
      push/pop plus two clock reads for spans;
    - when the registry is {e disabled} (the initial state) every
      operation is a single branch and records nothing, so a solver run
      with metrics off is observationally identical to one with metrics
      on (the solvers never read the registry);
    - {!snapshot} serializes the whole registry to {!Json.t} without
      disturbing it.

    Spans nest dynamically: [with_span "a" (fun () -> with_span "b" f)]
    records [b] as a child of [a], and repeated entries into the same
    child aggregate (count + total duration) rather than append. The
    registry is global mutable state, single-domain only — same contract
    as {!Repair_runtime.Budget}. *)

(** {1 Switching} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] forgets all counters and spans (and abandons any spans
    currently open), returning the registry to its pristine state. The
    enabled flag is left as-is. *)
val reset : unit -> unit

(** {1 Counters} *)

(** [incr ?by name] adds [by] (default 1) to counter [name], creating it
    at zero first. No-op while disabled. Counters are monotone: [by] must
    be non-negative.

    @raise Invalid_argument on negative [by]. *)
val incr : ?by:int -> string -> unit

(** [counter name] — current value; 0 for never-incremented counters. *)
val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** {1 Spans} *)

(** [with_span name f] runs [f] inside span [name], nested under the
    innermost open span. The duration is recorded even when [f] raises
    (budget exhaustion unwinds through spans routinely). While disabled
    this is exactly [f ()]. *)
val with_span : string -> (unit -> 'a) -> 'a

type span = {
  name : string;
  count : int;  (** completed entries *)
  total_s : float;  (** summed wall-clock duration, seconds *)
  children : span list;
}

(** Top-level spans recorded so far, children sorted by name at every
    level. Spans still open (e.g. snapshot taken from inside [with_span])
    report only their completed entries. *)
val spans : unit -> span list

(** [span_total path] — total seconds under the ['/']-separated path of
    span names, e.g. ["s-exact/conflict-graph.build"]. [None] if the path
    was never recorded. *)
val span_total : string -> float option

(** {1 Snapshots} *)

(** The whole registry as JSON:
    [{ "counters": { name: int, ... },
       "spans": [ { "name", "count", "total_ms", "children" }, ... ] }]
    with counters sorted by name and span durations in milliseconds.
    Deterministic except for the [total_ms] values. *)
val snapshot : unit -> Json.t
