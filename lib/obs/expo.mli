(** Prometheus-style text exposition (format 0.0.4) for the metrics
    registry, plus a grammar checker used by CI to validate scrapes.

    Family naming is collision-proof by construction: every registry
    name is sanitized (non-[[a-zA-Z0-9_:]] bytes become [_]), prefixed
    with the namespace, and suffixed by kind — counters get [_total],
    gauges nothing, histograms [_seconds] — so a counter and a histogram
    sharing a registry name render as distinct families:

    {v
    # TYPE repair_serve_requests_total counter
    repair_serve_requests_total 42
    # TYPE repair_serve_queue_depth gauge
    repair_serve_queue_depth 3
    # TYPE repair_serve_s_repair_seconds histogram
    repair_serve_s_repair_seconds_bucket{le="0.000158489319"} 7
    repair_serve_s_repair_seconds_bucket{le="+Inf"} 42
    repair_serve_s_repair_seconds_sum 0.0123
    repair_serve_s_repair_seconds_count 42
    v}

    Histogram buckets are cumulative with [le] = the bucket's upper edge
    in seconds; empty buckets are elided (the emitted series is still
    cumulative and ends with the mandatory [+Inf] bucket). Rendering is
    deterministic: input order is preserved and floats print via a fixed
    format. *)

(** [render ?namespace ~counters ~gauges ~histograms ()] — the text
    exposition of the given families, in the given order (callers pass
    name-sorted lists for a deterministic document). [namespace]
    defaults to ["repair"]. *)
val render :
  ?namespace:string ->
  counters:(string * int) list ->
  gauges:(string * float) list ->
  histograms:(string * Histogram.t) list ->
  unit ->
  string

(** [check text] — validate an exposition document: every sample's
    family has a prior [# TYPE] line (histogram series resolve through
    their [_bucket]/[_sum]/[_count] suffixes), no duplicate [TYPE]s,
    names well formed, values parseable, and per histogram: [le]
    strictly increasing, bucket counts cumulative, a [+Inf] bucket
    present and equal to [_count], [_sum] present. Errors carry the
    offending line number. *)
val check : string -> (unit, string) result
