(** Fixed-bucket latency histograms: log-spaced buckets over a hardwired
    range, O(1) observation, exact merging, and deterministic quantile
    estimates.

    Every histogram in the system shares one bucket scheme —
    {!buckets_per_decade} buckets per decade from {!lowest} seconds up to
    {!highest} seconds, plus one overflow bucket — so histograms recorded
    by different jobs, processes, or batch runs merge by adding bucket
    counts ({!merge}); no rebinning, no information loss beyond the bucket
    resolution (≈ 58% relative width at 5 buckets/decade).

    Quantiles are estimated as the geometric midpoint of the bucket
    containing the requested rank, clamped to the observed [min]/[max]:
    a pure function of the bucket counts, so two histograms with equal
    counts report equal quantiles regardless of observation order. *)

type t

(** Bucket scheme constants: buckets span
    [lowest · 10^(i/buckets_per_decade)] for [i = 0, 1, …]. *)

val lowest : float
(** lower edge of the first bucket: [1e-6] s (1 µs); smaller observations
    land in bucket 0 *)

val highest : float
(** lower edge of the overflow bucket: [1e3] s *)

val buckets_per_decade : int
(** [5] — every bucket is [10^0.2 ≈ 1.58×] wider than its predecessor *)

val n_buckets : int
(** total bucket count including the overflow bucket *)

(** [bucket_of seconds] — index of the bucket [seconds] falls in. *)
val bucket_of : float -> int

(** [bounds i] — the [[lo, hi)] range of bucket [i] in seconds; the
    overflow bucket reports [infinity] as [hi]. *)
val bounds : int -> float * float

(** {1 Recording} *)

val create : unit -> t

(** [observe t seconds] adds one observation. Negative observations
    clamp to 0. O(1). *)
val observe : t -> float -> unit

(** [merge ~into t] adds every observation of [t] into [into]. *)
val merge : into:t -> t -> unit

val copy : t -> t

(** [diff ~since t] — the histogram of observations added to [t] after
    [since] was {!copy}ed from it (windowed subtraction). Bucket counts
    and {!count} are exact (both monotone); {!sum} is the clamped
    difference of totals, and min/max are approximated from the bucket
    edges of the extreme non-empty delta buckets, since per-window
    extrema are not recoverable from two cumulative states. Quantiles of
    the delta are exact up to bucket resolution — the property rolling
    windows rely on. Negative bucket deltas (possible only if [since]
    was not a snapshot of [t]) clamp to 0. *)
val diff : since:t -> t -> t

(** {1 Reading} *)

val count : t -> int

val sum : t -> float
(** summed observations, seconds *)

val mean : t -> float
(** 0 when empty *)

val min_value : t -> float
(** smallest observation; 0 when empty *)

val max_value : t -> float
(** largest observation; 0 when empty *)

(** [quantile t q] — deterministic estimate of the [q]-quantile
    ([0 ≤ q ≤ 1]) in seconds: the geometric midpoint of the bucket
    holding the ⌈q·count⌉-th observation, clamped to [[min, max]].
    0 when empty. *)
val quantile : t -> float -> float

(** Non-empty buckets as [(index, count)] pairs, index-ascending — the
    raw data behind {!summary_json}'s sparse [buckets] object, exposed
    for exposition writers that need cumulative bucket counts. *)
val buckets : t -> (int * int) list

(** {1 Serialization} *)

(** [summary_json t] — the rendering used in metrics snapshots and batch
    summaries: [{"count", "mean_ms", "min_ms", "max_ms", "p50_ms",
    "p90_ms", "p99_ms", "buckets"}], durations in milliseconds, and
    [buckets] a sparse object mapping bucket index (as a string) to its
    count — enough to {!of_summary_json} and re-merge. *)
val summary_json : t -> Json.t

(** [of_summary_json j] rebuilds a histogram from {!summary_json} output
    (bucket counts, count, sum, min, max; quantiles are re-derived). *)
val of_summary_json : Json.t -> (t, string) result
