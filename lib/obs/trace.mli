(** Bounded event tracer: a ring buffer of begin/end/instant events with
    monotone timestamps, recorded by the same instrumentation points that
    feed {!Metrics} (every [Metrics.with_span] emits a matched
    begin/end pair, every {!Repair_runtime.Budget.tick} an instant).

    Design contract, mirroring {!Metrics}:

    - {e off by default}: while disabled every call is one branch and
      records nothing, so the solvers behave identically with tracing on
      or off (they never read the tracer);
    - {e O(1) record}: an event is one ring-buffer slot write; when the
      buffer is full the {e oldest} event is dropped and the
      [trace.dropped] counter bumped — tracing never grows memory and
      never blocks a hot loop;
    - {e monotone timestamps}: [ts] is seconds since {!enable} (or the
      last {!reset}), clamped to be non-decreasing per writer even if
      the wall clock steps backwards.

    The tracer is global mutable state with a {e single-writer} domain
    contract: the ring belongs to the domain that called {!enable}.
    Events emitted from any other domain are silently discarded —
    {e unless} a capture buffer is installed with {!with_capture}, in
    which case they are buffered domain-locally and delivered to the
    installer, which can feed them to the owner for {!inject}ion. This
    is how {!Repair_par.Pool} gives worker-domain spans a lane in the
    trace (distinct [tid]) without any cross-domain mutation of the
    ring. Export to the Chrome trace-event format lives in
    {!Trace_export}. *)

type kind =
  | Begin  (** a span opened ([ph:"B"] in the Chrome format) *)
  | End  (** the innermost open span closed ([ph:"E"]) *)
  | Instant  (** a point event, e.g. a budget checkpoint ([ph:"i"]) *)

type event = {
  seq : int;  (** 0-based emission index, monotone across drops *)
  ts : float;  (** seconds since enable/reset; non-decreasing per [tid] *)
  kind : kind;
  name : string;
  req : string option;
      (** originating request id ({!with_request}), if any — exported as
          [args.req] in the Chrome format *)
  tid : int;
      (** trace lane: {!tid_main} for events emitted by the ring owner,
          [2 + task_index] for pool-worker events re-injected by
          {!inject}; 0 while still in a capture buffer *)
}

(** The [tid] of events the owner domain writes directly: [1]. *)
val tid_main : int

(** {1 Switching} *)

(** Ring capacity used when [enable] is not given one: [65536] events. *)
val default_capacity : int

(** [enable ?capacity ()] switches tracing on with an empty ring of
    [capacity] events (default {!default_capacity}, minimum 1) and
    restarts the clock. Re-enabling an enabled tracer resets it. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** True when the calling domain owns the ring (it called {!enable}) —
    the precondition for {!inject} and for direct ring writes. *)
val owned : unit -> bool

(** [reset ()] empties the ring, zeroes [seq]/[dropped], and restarts the
    clock; the enabled flag and capacity are left as-is. *)
val reset : unit -> unit

(** {1 Recording} *)

val begin_ : string -> unit
val end_ : string -> unit
val instant : string -> unit

(** {1 Request context} *)

(** [with_request id f] runs [f] with the domain-local request context
    set to [id]: every event emitted by this domain inside [f] (ring or
    capture buffer) carries [req = Some id]. Contexts nest; the previous
    context is restored even when [f] raises. *)
val with_request : string -> (unit -> 'a) -> 'a

(** The current domain's request context, if set. *)
val current_request : unit -> string option

(** {1 Cross-domain capture} *)

(** [with_capture sink f] runs [f] with a fresh domain-local capture
    buffer installed: every event this domain emits inside [f] is
    buffered (with its own monotone clamp, on the shared
    since-[enable] timeline) instead of going to the ring. When [f]
    returns {e or raises}, the previous buffer state is restored and
    [sink] receives the buffered events in emission order — so a
    worker's events survive even when its task throws. Buffered events
    have provisional [seq]/[tid]; {!inject} reassigns both. Buffering is
    gated by buffer presence, not by {!enabled} — callers decide on the
    submitting domain whether tracing is on. *)
val with_capture : (event list -> unit) -> (unit -> 'a) -> 'a

(** [inject ?tid events] appends captured events to the ring, in order,
    re-stamping [seq] from the ring's counter and [tid] (default [2])
    onto each; timestamps are preserved as captured. Owner-only and
    no-op while disabled, like {!begin_}. Injection participates in
    drop-oldest accounting but does not advance the owner lane's
    monotone clamp — worker lanes are monotone per [tid], not
    interleaved with lane 1. *)
val inject : ?tid:int -> event list -> unit

(** {1 Reading} *)

(** Events currently in the ring, oldest first. When [dropped () > 0]
    the head of the list may contain [End] events whose [Begin] was
    evicted. *)
val events : unit -> event list

(** Events evicted by ring overflow since the last reset. Surfaced as
    the ["trace.dropped"] counter in {!Metrics.counters} and in the
    [otherData] block of the Chrome export. *)
val dropped : unit -> int

(** The capacity of the current ring. *)
val capacity : unit -> int
