(** Bounded event tracer: a ring buffer of begin/end/instant events with
    monotone timestamps, recorded by the same instrumentation points that
    feed {!Metrics} (every [Metrics.with_span] emits a matched
    begin/end pair, every {!Repair_runtime.Budget.tick} an instant).

    Design contract, mirroring {!Metrics}:

    - {e off by default}: while disabled every call is one branch and
      records nothing, so the solvers behave identically with tracing on
      or off (they never read the tracer);
    - {e O(1) record}: an event is one ring-buffer slot write; when the
      buffer is full the {e oldest} event is dropped and the
      [trace.dropped] counter bumped — tracing never grows memory and
      never blocks a hot loop;
    - {e monotone timestamps}: [ts] is seconds since {!enable} (or the
      last {!reset}), clamped to be non-decreasing across events even if
      the wall clock steps backwards.

    The tracer is global mutable state with a {e single-writer} domain
    contract: the ring belongs to the domain that called {!enable}, and
    events emitted from any other domain (e.g. {!Repair_par.Pool}
    workers) are silently discarded — the ring stays race-free without a
    lock on the hot path, and parallel runs simply trace the
    orchestrating domain. Export to the Chrome trace-event format lives
    in {!Trace_export}. *)

type kind =
  | Begin  (** a span opened ([ph:"B"] in the Chrome format) *)
  | End  (** the innermost open span closed ([ph:"E"]) *)
  | Instant  (** a point event, e.g. a budget checkpoint ([ph:"i"]) *)

type event = {
  seq : int;  (** 0-based emission index, monotone across drops *)
  ts : float;  (** seconds since enable/reset; non-decreasing *)
  kind : kind;
  name : string;
}

(** {1 Switching} *)

(** Ring capacity used when [enable] is not given one: [65536] events. *)
val default_capacity : int

(** [enable ?capacity ()] switches tracing on with an empty ring of
    [capacity] events (default {!default_capacity}, minimum 1) and
    restarts the clock. Re-enabling an enabled tracer resets it. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] empties the ring, zeroes [seq]/[dropped], and restarts the
    clock; the enabled flag and capacity are left as-is. *)
val reset : unit -> unit

(** {1 Recording} *)

val begin_ : string -> unit
val end_ : string -> unit
val instant : string -> unit

(** {1 Reading} *)

(** Events currently in the ring, oldest first. When [dropped () > 0]
    the head of the list may contain [End] events whose [Begin] was
    evicted. *)
val events : unit -> event list

(** Events evicted by ring overflow since the last reset. Surfaced as
    the ["trace.dropped"] counter in {!Metrics.counters} and in the
    [otherData] block of the Chrome export. *)
val dropped : unit -> int

(** The capacity of the current ring. *)
val capacity : unit -> int
