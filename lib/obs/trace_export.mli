(** Export {!Trace} rings to the Chrome trace-event format and derive
    plain-text hotspot reports from them.

    The export is the JSON-object flavour of the format understood by
    [chrome://tracing], Perfetto, and [speedscope]:

    {v
    { "traceEvents": [ {"name": "...", "cat": "repair", "ph": "B"|"E"|"i",
                        "ts": <µs>, "pid": 1, "tid": <lane>, ...}, ... ],
      "displayTimeUnit": "ms",
      "otherData": { "dropped": <n> } }
    v}

    Timestamps are microseconds since trace start ({!Trace.event}[.ts] ×
    10⁶), instants carry the mandatory [s:"t"] (thread) scope, [tid] is
    the event's lane ({!Trace.tid_main} for the ring owner, [2+i] for
    pool task [i]), events carrying a request context export it as
    [args.req], and the number of ring-buffer evictions is preserved in
    [otherData] so a round-trip through {!of_chrome} loses nothing the
    ring still had. *)

(** [to_chrome events ~dropped] builds the Chrome trace-event document. *)
val to_chrome : Trace.event list -> dropped:int -> Json.t

(** [of_chrome j] parses a document produced by {!to_chrome} (or by hand)
    back into events — ordered as written, [seq] re-derived from
    position — plus the recorded drop count. Unknown phase letters and
    missing required fields are errors. *)
val of_chrome : Json.t -> (Trace.event list * int, string) result

(** [validate ?dropped events] checks the stream is well formed, one
    lane ([tid]) at a time: per-lane timestamps non-decreasing, and —
    when [dropped] is 0 (the default) — every [End] matches the
    innermost open [Begin] of its lane and nothing is left open. With
    [dropped > 0] a lane may legitimately contain orphaned [End]s
    (their [Begin]s were evicted), so only monotonicity and the tail
    balance are enforced. Lanes may freely interleave in the stream. *)
val validate : ?dropped:int -> Trace.event list -> (unit, string) result

type hotspot = {
  name : string;
  count : int;  (** completed spans of this name *)
  total_s : float;  (** inclusive wall time *)
  self_s : float;  (** total minus time in child spans *)
  max_s : float;  (** longest single span *)
}

(** [hotspots events] pairs up begin/end events with one stack per lane
    ([tid]) and aggregates per-name inclusive/self time across lanes,
    tolerating orphaned events at the head of a lossy trace (they are
    skipped). Sorted by
    [self_s], largest first. Instants are counted into a hotspot with
    zero duration only if no span of that name exists. *)
val hotspots : Trace.event list -> hotspot list

(** [pp_hotspots ~top fmt hs] renders the report consumed by
    [repair-cli profile]: a fixed-width table of the [top] entries by
    self time, followed by a one-line total. *)
val pp_hotspots : top:int -> Format.formatter -> hotspot list -> unit
