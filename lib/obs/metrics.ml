type node = {
  mutable count : int;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let fresh_node () = { count = 0; total = 0.0; children = Hashtbl.create 4 }

let enabled_flag = ref false

(* The root node never accumulates time itself; its children are the
   top-level spans. [stack] always has the root at the bottom. *)
let root = fresh_node ()

let stack = ref [ root ]

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 16

let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset root.children;
  root.count <- 0;
  root.total <- 0.0;
  stack := [ root ]

let incr ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  if !enabled_flag then
    match Hashtbl.find_opt counters_tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counters_tbl name (ref by)

let counter name =
  match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let now = Unix.gettimeofday

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let parent = List.hd !stack in
    let node =
      match Hashtbl.find_opt parent.children name with
      | Some node -> node
      | None ->
        let node = fresh_node () in
        Hashtbl.add parent.children name node;
        node
    in
    stack := node :: !stack;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        node.count <- node.count + 1;
        node.total <- node.total +. (now () -. t0);
        (* A reset from inside the span replaces the stack wholesale; only
           pop when our frame is still on top. *)
        match !stack with
        | top :: rest when top == node -> stack := rest
        | _ -> ())
      f
  end

type span = {
  name : string;
  count : int;
  total_s : float;
  children : span list;
}

let rec tree_of (node : node) =
  Hashtbl.fold
    (fun name (child : node) acc ->
      { name; count = child.count; total_s = child.total;
        children = tree_of child }
      :: acc)
    node.children []
  |> List.sort (fun a b -> String.compare a.name b.name)

let spans () = tree_of root

let span_total path =
  let rec find parts spans =
    match parts with
    | [] -> None
    | name :: rest -> (
      match List.find_opt (fun s -> s.name = name) spans with
      | None -> None
      | Some s -> if rest = [] then Some s.total_s else find rest s.children)
  in
  find (String.split_on_char '/' path) (spans ())

let snapshot () =
  let rec span_json s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("count", Json.Int s.count);
        ("total_ms", Json.Float (s.total_s *. 1000.0));
        ("children", Json.List (List.map span_json s.children)) ]
  in
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
      ("spans", Json.List (List.map span_json (spans ()))) ]
