type node = {
  mutable count : int;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let fresh_node () = { count = 0; total = 0.0; children = Hashtbl.create 4 }

let enabled_flag = ref false

(* The root node never accumulates time itself; its children are the
   top-level spans. [stack] always has the root at the bottom. *)
let root = fresh_node ()

let stack = ref [ root ]

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 16

let hist_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset hist_tbl;
  Hashtbl.reset root.children;
  root.count <- 0;
  root.total <- 0.0;
  stack := [ root ]

let incr ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  if !enabled_flag then
    (* [find]/[Not_found] rather than [find_opt]: the hit path of a hot
       counter must not allocate (see bench E19). *)
    match Hashtbl.find counters_tbl name with
    | r -> r := !r + by
    | exception Not_found -> Hashtbl.add counters_tbl name (ref by)

(* Ring-buffer evictions surface as the synthetic, read-only
   ["trace.dropped"] counter: the tracer cannot report into this table
   itself (Metrics sits above Trace in the dependency order), and the
   counter must exist even when tracing runs with metrics disabled. *)
let trace_dropped_name = "trace.dropped"

let counter name =
  let base =
    match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0
  in
  if String.equal name trace_dropped_name then base + Trace.dropped ()
  else base

let counters () =
  let base =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
  in
  let base =
    if Trace.dropped () > 0 && not (List.mem_assoc trace_dropped_name base)
    then (trace_dropped_name, Trace.dropped ()) :: base
    else base
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) base

let hist_find name =
  match Hashtbl.find hist_tbl name with
  | h -> h
  | exception Not_found ->
    let h = Histogram.create () in
    Hashtbl.add hist_tbl name h;
    h

let observe_always name seconds = Histogram.observe (hist_find name) seconds

let observe name seconds =
  if !enabled_flag then observe_always name seconds

let histogram name = Hashtbl.find_opt hist_tbl name

let histograms () =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) hist_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let now = Unix.gettimeofday

(* The one instrumentation point behind every solver span: while metrics
   are enabled it aggregates the span node and feeds the latency
   histogram of [name]; while tracing is enabled it emits the matched
   Begin/End event pair. Both are captured on entry so an exception (or
   an enable/disable flip inside [f]) cannot unbalance the trace. *)
let with_span name f =
  let m = !enabled_flag in
  let t = Trace.enabled () in
  if not (m || t) then f ()
  else begin
    if t then Trace.begin_ name;
    if not m then
      Fun.protect ~finally:(fun () -> if t then Trace.end_ name) f
    else begin
      let parent = List.hd !stack in
      let node =
        match Hashtbl.find_opt parent.children name with
        | Some node -> node
        | None ->
          let node = fresh_node () in
          Hashtbl.add parent.children name node;
          node
      in
      stack := node :: !stack;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now () -. t0 in
          node.count <- node.count + 1;
          node.total <- node.total +. dt;
          observe_always name dt;
          (* A reset from inside the span replaces the stack wholesale; only
             pop when our frame is still on top. *)
          (match !stack with
          | top :: rest when top == node -> stack := rest
          | _ -> ());
          if t then Trace.end_ name)
        f
    end
  end

type span = {
  name : string;
  count : int;
  total_s : float;
  children : span list;
}

let rec tree_of (node : node) =
  Hashtbl.fold
    (fun name (child : node) acc ->
      { name; count = child.count; total_s = child.total;
        children = tree_of child }
      :: acc)
    node.children []
  |> List.sort (fun a b -> String.compare a.name b.name)

let spans () = tree_of root

let span_total path =
  let rec find parts spans =
    match parts with
    | [] -> None
    | name :: rest -> (
      match List.find_opt (fun s -> s.name = name) spans with
      | None -> None
      | Some s -> if rest = [] then Some s.total_s else find rest s.children)
  in
  find (String.split_on_char '/' path) (spans ())

let snapshot () =
  let rec span_json s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("count", Json.Int s.count);
        ("total_ms", Json.Float (s.total_s *. 1000.0));
        ("children", Json.List (List.map span_json s.children)) ]
  in
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
      ("spans", Json.List (List.map span_json (spans ())));
      ("histograms",
       Json.Obj
         (List.map
            (fun (k, h) -> (k, Histogram.summary_json h))
            (histograms ()))) ]
