type node = {
  mutable count : int;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let fresh_node () = { count = 0; total = 0.0; children = Hashtbl.create 4 }

(* The enabled switch is shared by every domain (workers must know
   whether to record), so it lives in an atomic; everything else is
   per-domain. *)
let enabled_flag = Atomic.make false

(* One registry per domain, held in domain-local storage. The root node
   never accumulates time itself; its children are the top-level spans.
   [stack] always has the root at the bottom. Worker domains record into
   their own registry; {!capture}/{!merge} move the result back into the
   parent's registry at a deterministic point, so cross-domain runs
   aggregate exactly without any cross-domain mutation. *)
type registry = {
  root : node;
  mutable stack : node list;
  counters_tbl : (string, int ref) Hashtbl.t;
  hist_tbl : (string, Histogram.t) Hashtbl.t;
}

let fresh_registry () =
  let root = fresh_node () in
  { root;
    stack = [ root ];
    counters_tbl = Hashtbl.create 16;
    hist_tbl = Hashtbl.create 16 }

let registry_key = Domain.DLS.new_key fresh_registry

let reg () = Domain.DLS.get registry_key

let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let reset () =
  let r = reg () in
  Hashtbl.reset r.counters_tbl;
  Hashtbl.reset r.hist_tbl;
  Hashtbl.reset r.root.children;
  r.root.count <- 0;
  r.root.total <- 0.0;
  r.stack <- [ r.root ]

let incr ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  if Atomic.get enabled_flag then
    (* [find]/[Not_found] rather than [find_opt]: the hit path of a hot
       counter must not allocate (see bench E19). *)
    let counters_tbl = (Domain.DLS.get registry_key).counters_tbl in
    match Hashtbl.find counters_tbl name with
    | r -> r := !r + by
    | exception Not_found -> Hashtbl.add counters_tbl name (ref by)

(* Ring-buffer evictions surface as the synthetic, read-only
   ["trace.dropped"] counter: the tracer cannot report into this table
   itself (Metrics sits above Trace in the dependency order), and the
   counter must exist even when tracing runs with metrics disabled. *)
let trace_dropped_name = "trace.dropped"

let counter name =
  let base =
    match Hashtbl.find_opt (reg ()).counters_tbl name with
    | Some r -> !r
    | None -> 0
  in
  if String.equal name trace_dropped_name then base + Trace.dropped ()
  else base

let counters () =
  let base =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) (reg ()).counters_tbl []
  in
  let base =
    if Trace.dropped () > 0 && not (List.mem_assoc trace_dropped_name base)
    then (trace_dropped_name, Trace.dropped ()) :: base
    else base
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) base

let hist_find name =
  let hist_tbl = (reg ()).hist_tbl in
  match Hashtbl.find hist_tbl name with
  | h -> h
  | exception Not_found ->
    let h = Histogram.create () in
    Hashtbl.add hist_tbl name h;
    h

let observe_always name seconds = Histogram.observe (hist_find name) seconds

let observe name seconds =
  if Atomic.get enabled_flag then observe_always name seconds

let histogram name = Hashtbl.find_opt (reg ()).hist_tbl name

let histograms () =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) (reg ()).hist_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let now = Unix.gettimeofday

(* The one instrumentation point behind every solver span: while metrics
   are enabled it aggregates the span node and feeds the latency
   histogram of [name]; while tracing is enabled it emits the matched
   Begin/End event pair. Both are captured on entry so an exception (or
   an enable/disable flip inside [f]) cannot unbalance the trace. *)
let with_span name f =
  let m = Atomic.get enabled_flag in
  let t = Trace.enabled () in
  if not (m || t) then f ()
  else begin
    if t then Trace.begin_ name;
    if not m then
      Fun.protect ~finally:(fun () -> if t then Trace.end_ name) f
    else begin
      let r = reg () in
      let parent = List.hd r.stack in
      let node =
        match Hashtbl.find_opt parent.children name with
        | Some node -> node
        | None ->
          let node = fresh_node () in
          Hashtbl.add parent.children name node;
          node
      in
      r.stack <- node :: r.stack;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now () -. t0 in
          node.count <- node.count + 1;
          node.total <- node.total +. dt;
          observe_always name dt;
          (* A reset from inside the span replaces the stack wholesale; only
             pop when our frame is still on top. *)
          (match r.stack with
          | top :: rest when top == node -> r.stack <- rest
          | _ -> ());
          if t then Trace.end_ name)
        f
    end
  end

(* {2 Cross-domain capture and merge} *)

type captured = registry

let capture f =
  let saved = Domain.DLS.get registry_key in
  let fresh = fresh_registry () in
  Domain.DLS.set registry_key fresh;
  let result = try Ok (f ()) with e -> Error e in
  Domain.DLS.set registry_key saved;
  (result, fresh)

let merge (c : captured) =
  let r = reg () in
  Hashtbl.iter
    (fun name v ->
      match Hashtbl.find_opt r.counters_tbl name with
      | Some dst -> dst := !dst + !v
      | None -> Hashtbl.add r.counters_tbl name (ref !v))
    c.counters_tbl;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt r.hist_tbl name with
      | Some dst -> Histogram.merge ~into:dst h
      | None -> Hashtbl.add r.hist_tbl name (Histogram.copy h))
    c.hist_tbl;
  (* Graft the captured span forest under the innermost span currently
     open here, mirroring where the spans would have nested had the work
     run inline. *)
  let rec graft (dst : node) (src : node) =
    Hashtbl.iter
      (fun name (child : node) ->
        let dnode =
          match Hashtbl.find_opt dst.children name with
          | Some n -> n
          | None ->
            let n = fresh_node () in
            Hashtbl.add dst.children name n;
            n
        in
        dnode.count <- dnode.count + child.count;
        dnode.total <- dnode.total +. child.total;
        graft dnode child)
      src.children
  in
  graft (List.hd r.stack) c.root

type span = {
  name : string;
  count : int;
  total_s : float;
  children : span list;
}

let rec tree_of (node : node) =
  Hashtbl.fold
    (fun name (child : node) acc ->
      { name; count = child.count; total_s = child.total;
        children = tree_of child }
      :: acc)
    node.children []
  |> List.sort (fun a b -> String.compare a.name b.name)

let spans () = tree_of (reg ()).root

(* Read-only views into a capture, for per-request records (slow-request
   logging) that want the work's own counters and span breakdown before
   — or regardless of — the capture being merged. Raw table contents:
   no synthetic [trace.dropped] read-through, which is global, not
   per-capture. *)
let captured_counters (c : captured) =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let captured_spans (c : captured) = tree_of c.root

let span_total path =
  let rec find parts spans =
    match parts with
    | [] -> None
    | name :: rest -> (
      match List.find_opt (fun s -> s.name = name) spans with
      | None -> None
      | Some s -> if rest = [] then Some s.total_s else find rest s.children)
  in
  find (String.split_on_char '/' path) (spans ())

let snapshot () =
  let rec span_json s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("count", Json.Int s.count);
        ("total_ms", Json.Float (s.total_s *. 1000.0));
        ("children", Json.List (List.map span_json s.children)) ]
  in
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
      ("spans", Json.List (List.map span_json (spans ())));
      ("histograms",
       Json.Obj
         (List.map
            (fun (k, h) -> (k, Histogram.summary_json h))
            (histograms ()))) ]
