type source = {
  counters : unit -> (string * int) list;
  histograms : unit -> (string * Histogram.t) list;
  gauges : unit -> (string * float) list;
}

type window = {
  seq : int;
  t_start : float;
  span_s : float;
  counters : (string * int) list;
  histograms : (string * Histogram.t) list;
  gauges : (string * float) list;
}

type t = {
  source : source;
  clock : unit -> float;
  interval_s : float;
  ring : window option array;
  mutable head : int; (* next slot to write *)
  mutable count : int; (* live windows, <= capacity *)
  mutable seq : int;
  mutable window_start : float;
  base_counters : (string, int) Hashtbl.t;
  base_hists : (string, Histogram.t) Hashtbl.t;
}

let default_windows = 60

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* Re-baseline from the current cumulative state: the next window's
   deltas are measured against this snapshot. Histograms are copied —
   the source hands out its live, still-mutating instances. *)
let rebase t counters hists =
  Hashtbl.reset t.base_counters;
  List.iter (fun (k, v) -> Hashtbl.replace t.base_counters k v) counters;
  Hashtbl.reset t.base_hists;
  List.iter (fun (k, h) -> Hashtbl.replace t.base_hists k (Histogram.copy h)) hists

let create ?(windows = default_windows) ~interval_s ?clock source =
  if interval_s <= 0.0 then invalid_arg "Timeseries.create: interval_s <= 0";
  if windows < 1 then invalid_arg "Timeseries.create: windows < 1";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let t =
    { source; clock; interval_s;
      ring = Array.make windows None;
      head = 0; count = 0; seq = 0;
      window_start = clock ();
      base_counters = Hashtbl.create 16;
      base_hists = Hashtbl.create 16 }
  in
  rebase t (source.counters ()) (source.histograms ());
  t

let of_metrics ?(gauges = fun () -> []) ?windows ~interval_s ?clock () =
  create ?windows ~interval_s ?clock
    { counters = Metrics.counters;
      histograms = Metrics.histograms;
      gauges }

let interval_s t = t.interval_s

let capacity t = Array.length t.ring

let n_windows t = t.count

let push t w =
  let cap = Array.length t.ring in
  if t.count < cap then t.count <- t.count + 1;
  t.ring.(t.head) <- Some w;
  t.head <- (if t.head + 1 = cap then 0 else t.head + 1)

(* Close at most one window per call. A stalled sampler (poll loop
   asleep with no traffic) closes a single wide window covering the
   whole stall — [span_s] a multiple of the interval — rather than
   looping to emit a backlog of empties; rates divide by [span_s], so
   the wide window reports the same rate the backlog would have. *)
let tick t =
  let now = t.clock () in
  let elapsed = now -. t.window_start in
  if elapsed >= t.interval_s then begin
    let k = max 1 (int_of_float (Float.floor (elapsed /. t.interval_s))) in
    let span_s = float_of_int k *. t.interval_s in
    let cur_counters = by_name (t.source.counters ()) in
    let cur_hists = by_name (t.source.histograms ()) in
    let deltas =
      List.filter_map
        (fun (name, v) ->
          let base =
            Option.value ~default:0 (Hashtbl.find_opt t.base_counters name)
          in
          if v - base <> 0 then Some (name, v - base) else None)
        cur_counters
    in
    let hdeltas =
      List.filter_map
        (fun (name, h) ->
          let d =
            match Hashtbl.find_opt t.base_hists name with
            | Some base -> Histogram.diff ~since:base h
            | None -> Histogram.copy h
          in
          if Histogram.count d > 0 then Some (name, d) else None)
        cur_hists
    in
    let gauges = by_name (t.source.gauges ()) in
    push t
      { seq = t.seq; t_start = t.window_start; span_s;
        counters = deltas; histograms = hdeltas; gauges };
    t.seq <- t.seq + 1;
    t.window_start <- t.window_start +. span_s;
    rebase t cur_counters cur_hists
  end

let windows t =
  let cap = Array.length t.ring in
  let oldest = (t.head - t.count + cap) mod cap in
  List.init t.count (fun i ->
      match t.ring.((oldest + i) mod cap) with
      | Some w -> w
      | None -> assert false)

let span_total t =
  List.fold_left (fun acc w -> acc +. w.span_s) 0.0 (windows t)

let rate t name =
  let ws = windows t in
  let span = List.fold_left (fun acc w -> acc +. w.span_s) 0.0 ws in
  if span <= 0.0 then 0.0
  else
    let total =
      List.fold_left
        (fun acc w ->
          acc + Option.value ~default:0 (List.assoc_opt name w.counters))
        0 ws
    in
    float_of_int total /. span

let rolling t name =
  let into = Histogram.create () in
  List.iter
    (fun w ->
      match List.assoc_opt name w.histograms with
      | Some h -> Histogram.merge ~into h
      | None -> ())
    (windows t);
  into

let last_gauge t name =
  match List.rev (windows t) with
  | [] -> None
  | w :: _ -> List.assoc_opt name w.gauges

(* Union of names across windows, each name once, sorted. *)
let names proj t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun w -> List.iter (fun (k, _) -> Hashtbl.replace tbl k ()) (proj w))
    (windows t);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort String.compare

let counter_names = names (fun w -> w.counters)
let histogram_names = names (fun w -> w.histograms)
let gauge_names = names (fun w -> w.gauges)

let window_json (w : window) =
  Json.Obj
    [ ("seq", Json.Int w.seq);
      ("t_start", Json.Float w.t_start);
      ("span_s", Json.Float w.span_s);
      ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) w.counters));
      ("histograms",
       Json.Obj
         (List.map (fun (k, h) -> (k, Histogram.summary_json h)) w.histograms));
      ("gauges",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) w.gauges)) ]

let to_json t =
  Json.Obj
    [ ("interval_s", Json.Float t.interval_s);
      ("capacity", Json.Int (Array.length t.ring));
      ("span_s", Json.Float (span_total t));
      ("rates",
       Json.Obj
         (List.map (fun k -> (k, Json.Float (rate t k))) (counter_names t)));
      ("rolling",
       Json.Obj
         (List.map
            (fun k -> (k, Histogram.summary_json (rolling t k)))
            (histogram_names t)));
      ("gauges",
       Json.Obj
         (List.filter_map
            (fun k ->
              Option.map (fun v -> (k, Json.Float v)) (last_gauge t k))
            (gauge_names t)));
      ("windows", Json.List (List.map window_json (windows t))) ]
