let lowest = 1e-6

let highest = 1e3

let buckets_per_decade = 5

(* 9 decades (1µs .. 1000s) plus the overflow bucket. *)
let n_buckets = (9 * buckets_per_decade) + 1

let bucket_of v =
  if v < lowest then 0
  else
    let i =
      int_of_float
        (Float.log10 (v /. lowest) *. float_of_int buckets_per_decade)
    in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let edge i = lowest *. (10.0 ** (float_of_int i /. float_of_int buckets_per_decade))

let bounds i =
  if i < 0 || i >= n_buckets then invalid_arg "Histogram.bounds";
  if i = n_buckets - 1 then (highest, infinity) else (edge i, edge (i + 1))

type t = {
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; total = 0.0; lo = infinity;
    hi = neg_infinity }

let observe t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v

let merge ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  into.total <- into.total +. t.total;
  if t.lo < into.lo then into.lo <- t.lo;
  if t.hi > into.hi then into.hi <- t.hi

let copy t =
  { t with counts = Array.copy t.counts }

(* Windowed subtraction. Bucket counts and [n] are monotone, so the
   per-bucket deltas are exact; [total]/[lo]/[hi] are not recoverable
   from two cumulative states (the window's min/max were folded into the
   running extrema), so [total] is the clamped difference and the range
   is re-derived from the bucket edges of the lowest/highest non-empty
   delta bucket. That loses nothing rolling windows care about:
   quantiles are a pure function of bucket counts, and the edge-derived
   clamp is at most one bucket width (≈58%) off the true extremum.
   Callers needing an exact per-window [sum]/[min]/[max] must keep a
   fresh histogram per window instead of diffing a cumulative one. *)
let diff ~since t =
  let d = create () in
  Array.iteri
    (fun i c ->
      let dc = c - since.counts.(i) in
      if dc > 0 then begin
        d.counts.(i) <- dc;
        d.n <- d.n + dc
      end)
    t.counts;
  if d.n > 0 then begin
    d.total <- Float.max 0.0 (t.total -. since.total);
    let lo_i = ref (-1) and hi_i = ref (-1) in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          if !lo_i < 0 then lo_i := i;
          hi_i := i
        end)
      d.counts;
    d.lo <- fst (bounds !lo_i);
    let _, hi_edge = bounds !hi_i in
    d.hi <- (if hi_edge = infinity then fst (bounds !hi_i) else hi_edge)
  end;
  d

let buckets t =
  Array.to_list t.counts
  |> List.mapi (fun i c -> (i, c))
  |> List.filter (fun (_, c) -> c > 0)

let count t = t.n

let sum t = t.total

let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n

let min_value t = if t.n = 0 then 0.0 else t.lo

let max_value t = if t.n = 0 then 0.0 else t.hi

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  if t.n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and cum = ref t.counts.(0) in
    while !cum < rank do
      incr i;
      cum := !cum + t.counts.(!i)
    done;
    let lo, hi = bounds !i in
    (* Geometric midpoint of the bucket; the overflow bucket has no upper
       edge, so it reports its lower one. Clamping to the observed range
       keeps single-bucket histograms honest (estimate = the bucket
       midpoint can exceed the true max by the bucket width). *)
    let est = if hi = infinity then lo else Float.sqrt (lo *. hi) in
    Float.min (Float.max est t.lo) t.hi
  end

let ms s = s *. 1000.0

let summary_json t =
  let buckets =
    Array.to_list t.counts
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) ->
           if c = 0 then None else Some (string_of_int i, Json.Int c))
  in
  Json.Obj
    [ ("count", Json.Int t.n);
      ("mean_ms", Json.Float (ms (mean t)));
      ("min_ms", Json.Float (ms (min_value t)));
      ("max_ms", Json.Float (ms (max_value t)));
      ("p50_ms", Json.Float (ms (quantile t 0.5)));
      ("p90_ms", Json.Float (ms (quantile t 0.9)));
      ("p99_ms", Json.Float (ms (quantile t 0.99)));
      ("buckets", Json.Obj buckets) ]

let of_summary_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "missing or ill-typed histogram field" in
  let* n = Option.bind (Json.member "count" j) Json.int_value in
  let* mean_ms = Option.bind (Json.member "mean_ms" j) Json.float_value in
  let* min_ms = Option.bind (Json.member "min_ms" j) Json.float_value in
  let* max_ms = Option.bind (Json.member "max_ms" j) Json.float_value in
  let* buckets =
    match Json.member "buckets" j with
    | Some (Json.Obj fields) -> Some fields
    | _ -> None
  in
  let t = create () in
  let bad = ref None in
  List.iter
    (fun (k, v) ->
      match (int_of_string_opt k, Json.int_value v) with
      | Some i, Some c when i >= 0 && i < n_buckets && c >= 0 ->
        t.counts.(i) <- t.counts.(i) + c
      | _ -> bad := Some (Printf.sprintf "bad bucket entry %S" k))
    buckets;
  match !bad with
  | Some m -> Error m
  | None ->
    if Array.fold_left ( + ) 0 t.counts <> n then
      Error "bucket counts disagree with \"count\""
    else begin
      t.n <- n;
      t.total <- mean_ms /. 1000.0 *. float_of_int n;
      if n > 0 then begin
        t.lo <- min_ms /. 1000.0;
        t.hi <- max_ms /. 1000.0
      end;
      Ok t
    end
