module Repair_error = Repair_runtime.Repair_error
module Json = Repair_obs.Json

type entry =
  | Begin of { jobs : int }
  | Start of { job : string; attempt : int }
  | Retry of { job : string; attempt : int; error : string; backoff_ms : int }
  | Commit of {
      job : string;
      attempt : int;
      status : [ `Ok | `Degraded ];
      method_used : string;
      distance : float;
      wall_ms : float;
      counters : (string * int) list;
    }
  | Quarantine of {
      job : string;
      attempts : int;
      error : string;
      detail : string;
      counters : (string * int) list;
    }

let status_name = function `Ok -> "ok" | `Degraded -> "degraded"

let entry_to_json = function
  | Begin { jobs } ->
    Json.Obj [ ("event", Json.String "begin"); ("jobs", Json.Int jobs) ]
  | Start { job; attempt } ->
    Json.Obj
      [ ("event", Json.String "start");
        ("job", Json.String job);
        ("attempt", Json.Int attempt) ]
  | Retry { job; attempt; error; backoff_ms } ->
    Json.Obj
      [ ("event", Json.String "retry");
        ("job", Json.String job);
        ("attempt", Json.Int attempt);
        ("error", Json.String error);
        ("backoff_ms", Json.Int backoff_ms) ]
  | Commit { job; attempt; status; method_used; distance; wall_ms; counters }
    ->
    Json.Obj
      [ ("event", Json.String "commit");
        ("job", Json.String job);
        ("attempt", Json.Int attempt);
        ("status", Json.String (status_name status));
        ("method", Json.String method_used);
        ("distance", Json.Float distance);
        ("wall_ms", Json.Float wall_ms);
        ("counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]
  | Quarantine { job; attempts; error; detail; counters } ->
    Json.Obj
      [ ("event", Json.String "quarantine");
        ("job", Json.String job);
        ("attempts", Json.Int attempts);
        ("error", Json.String error);
        ("detail", Json.String detail);
        ("counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]

let counters_field j =
  match Json.member "counters" j with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.int_value v))
      fields
  | _ -> []

let entry_of_json j =
  let str k = Option.bind (Json.member k j) Json.string_value in
  let int k = Option.bind (Json.member k j) Json.int_value in
  let float k = Option.bind (Json.member k j) Json.float_value in
  let ( let* ) o f =
    match o with Some v -> f v | None -> Error "missing or ill-typed field"
  in
  match str "event" with
  | Some "begin" ->
    let* jobs = int "jobs" in
    Ok (Begin { jobs })
  | Some "start" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    Ok (Start { job; attempt })
  | Some "retry" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    let* error = str "error" in
    let* backoff_ms = int "backoff_ms" in
    Ok (Retry { job; attempt; error; backoff_ms })
  | Some "commit" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    let* status = str "status" in
    let* method_used = str "method" in
    let* distance = float "distance" in
    let* status =
      match status with
      | "ok" -> Some `Ok
      | "degraded" -> Some `Degraded
      | _ -> None
    in
    (* Journals written before telemetry landed lack these two fields;
       read them as zero so old runs still resume. *)
    let wall_ms = Option.value (float "wall_ms") ~default:0.0 in
    let counters = counters_field j in
    Ok (Commit { job; attempt; status; method_used; distance; wall_ms; counters })
  | Some "quarantine" ->
    let* job = str "job" in
    let* attempts = int "attempts" in
    let* error = str "error" in
    let* detail = str "detail" in
    let counters = counters_field j in
    Ok (Quarantine { job; attempts; error; detail; counters })
  | Some other -> Error (Printf.sprintf "unknown event %S" other)
  | None -> Error "record has no \"event\" field"

let is_terminal = function
  | Begin _ | Commit _ | Quarantine _ -> true
  | Start _ | Retry _ -> false

(* ---------- framing ---------- *)

type format = [ `Framed | `Legacy ]

(* Framed record: ['@' len ':' crc8 ':' payload '\n'] where [len] is the
   decimal byte length of [payload], [crc8] is 8 lowercase hex digits of
   CRC-32(payload), and [payload] is the compact JSON rendering of the
   entry. The JSON encoder escapes control characters, so a payload
   never contains a raw newline: a record is torn iff its final '\n' is
   missing, and any {e complete} line that fails the frame grammar, the
   checksum, or the JSON parse can only be corruption. Legacy journals
   (plain JSONL, first byte '{') predate framing and are still read and
   appended to. *)
let frame payload =
  Printf.sprintf "@%d:%s:%s\n" (String.length payload)
    (Crc32.to_hex (Crc32.string payload)) payload

(* ---------- appending ---------- *)

module Io_fault = Repair_runtime.Io_fault

type writer = {
  fd : Unix.file_descr;
  path : string;
  format : format;
  sync : bool;
}

let io_err path fmt =
  Fmt.kstr
    (fun detail -> Repair_error.raise_error (Io { file = path; detail }))
    fmt

let open_append ?(format = `Framed) ?(sync = true) path =
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 with
  | fd -> { fd; path; format; sync }
  | exception Unix.Unix_error (e, _, _) ->
    io_err path "%s" (Unix.error_message e)

let append w entry =
  let payload = Json.to_string (entry_to_json entry) in
  let line =
    match w.format with `Framed -> frame payload | `Legacy -> payload ^ "\n"
  in
  let bytes = Bytes.unsafe_of_string line in
  let n = Bytes.length bytes in
  (* Through the fault shim: short writes loop, EINTR retries; any other
     Unix_error is a classified Io failure. Io_fault.Crash (simulated
     kill) propagates raw, as a real kill would. *)
  let rec write_all off =
    if off < n then
      match Io_fault.write w.fd bytes off (n - off) with
      | written -> write_all (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error (e, _, _) ->
        io_err w.path "%s" (Unix.error_message e)
  in
  write_all 0;
  if w.sync then begin
    let rec sync () =
      match Io_fault.fsync w.fd with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> sync ()
      | exception Unix.Unix_error (e, _, _) ->
        io_err w.path "%s" (Unix.error_message e)
    in
    sync ()
  end

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()

(* ---------- recovery ---------- *)

type recovery = {
  entries : entry list;
  committed : (string * entry) list;
  truncated : bool;
  format : format;
}

let corrupt_sidecar path = path ^ ".corrupt"

(* One scanned record: parsed, torn (incomplete final chunk — the only
   shape an interrupted append can leave), or bad (a complete line that
   fails validation — only corruption produces this). *)
type verdict = Parsed of entry * int | Torn | Bad of string

let is_digits s = s <> "" && String.for_all (function '0' .. '9' -> true | _ -> false) s

let parse_json_line line =
  match Result.bind (Json.of_string line) entry_of_json with
  | Ok e -> Ok e
  | Error m -> Error m

let scan_framed text pos =
  match String.index_from_opt text pos '\n' with
  | None -> Torn
  | Some nl -> (
    let line = String.sub text pos (nl - pos) in
    let bad m = Bad m in
    if String.length line < 12 || line.[0] <> '@' then
      bad "malformed frame header"
    else
      match String.index_from_opt line 1 ':' with
      | None -> bad "malformed frame header"
      | Some c1 -> (
        let len_field = String.sub line 1 (c1 - 1) in
        if not (is_digits len_field && String.length len_field <= 9) then
          bad "malformed length prefix"
        else
          let rlen = int_of_string len_field in
          if String.length line < c1 + 10 || line.[c1 + 9] <> ':' then
            bad "malformed frame header"
          else
            let crc_field = String.sub line (c1 + 1) 8 in
            let payload = String.sub line (c1 + 10) (String.length line - c1 - 10) in
            match Crc32.of_hex crc_field with
            | None -> bad "malformed checksum field"
            | Some crc ->
              if String.length payload <> rlen then bad "length mismatch"
              else if Crc32.string payload <> crc then bad "checksum mismatch"
              else (
                match parse_json_line payload with
                | Ok e -> Parsed (e, nl + 1)
                | Error m -> bad m)))

let scan_legacy text pos =
  match String.index_from_opt text pos '\n' with
  | None -> Torn
  | Some nl -> (
    let line = String.sub text pos (nl - pos) in
    match parse_json_line line with
    | Ok e -> Parsed (e, nl + 1)
    | Error m -> Bad m)

let recover path =
  if not (Sys.file_exists path) then
    { entries = []; committed = []; truncated = false; format = `Framed }
  else begin
    let text = Io_fault.read_file path in
    let len = String.length text in
    let format = if len > 0 && text.[0] = '{' then `Legacy else `Framed in
    let scan = match format with `Framed -> scan_framed | `Legacy -> scan_legacy in
    (* Walk record by record, remembering the byte offset just past the
       last terminal record: that is the committed prefix. Stop at the
       first torn or bad record. *)
    let committed_end = ref 0 in
    let committed_entries = ref [] in
    let pending = ref [] in
    let pos = ref 0 in
    let stopped = ref None in
    (try
       while !pos < len do
         match scan text !pos with
         | Torn -> raise Exit
         | Bad detail ->
           stopped := Some detail;
           raise Exit
         | Parsed (e, next) ->
           pending := e :: !pending;
           if is_terminal e then begin
             committed_end := next;
             committed_entries := !pending @ !committed_entries;
             pending := []
           end;
           pos := next
       done
     with Exit -> ());
    match !stopped with
    | Some detail ->
      (* Mid-file corruption: a complete record failed its integrity
         check. Quarantine everything past the last valid commit point
         to a sidecar, truncate the journal to that point, and refuse to
         replay further — the caller decides what to do with the
         structured error. A subsequent recover of the (now valid)
         prefix proceeds normally. *)
      Io_fault.write_file_atomic (corrupt_sidecar path)
        (String.sub text !committed_end (len - !committed_end));
      Unix.truncate path !committed_end;
      Repair_error.raise_error
        (Corruption { file = path; offset = !committed_end; detail })
    | None ->
      let truncated = !committed_end < len in
      if truncated then Unix.truncate path !committed_end;
      let entries = List.rev !committed_entries in
      let committed =
        List.filter_map
          (function
            | (Commit { job; _ } | Quarantine { job; _ }) as e -> Some (job, e)
            | Begin _ | Start _ | Retry _ -> None)
          entries
      in
      { entries; committed; truncated; format }
  end
