module Repair_error = Repair_runtime.Repair_error
module Json = Repair_obs.Json

type entry =
  | Begin of { jobs : int }
  | Start of { job : string; attempt : int }
  | Retry of { job : string; attempt : int; error : string; backoff_ms : int }
  | Commit of {
      job : string;
      attempt : int;
      status : [ `Ok | `Degraded ];
      method_used : string;
      distance : float;
      wall_ms : float;
      counters : (string * int) list;
    }
  | Quarantine of {
      job : string;
      attempts : int;
      error : string;
      detail : string;
      counters : (string * int) list;
    }

let status_name = function `Ok -> "ok" | `Degraded -> "degraded"

let entry_to_json = function
  | Begin { jobs } ->
    Json.Obj [ ("event", Json.String "begin"); ("jobs", Json.Int jobs) ]
  | Start { job; attempt } ->
    Json.Obj
      [ ("event", Json.String "start");
        ("job", Json.String job);
        ("attempt", Json.Int attempt) ]
  | Retry { job; attempt; error; backoff_ms } ->
    Json.Obj
      [ ("event", Json.String "retry");
        ("job", Json.String job);
        ("attempt", Json.Int attempt);
        ("error", Json.String error);
        ("backoff_ms", Json.Int backoff_ms) ]
  | Commit { job; attempt; status; method_used; distance; wall_ms; counters }
    ->
    Json.Obj
      [ ("event", Json.String "commit");
        ("job", Json.String job);
        ("attempt", Json.Int attempt);
        ("status", Json.String (status_name status));
        ("method", Json.String method_used);
        ("distance", Json.Float distance);
        ("wall_ms", Json.Float wall_ms);
        ("counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]
  | Quarantine { job; attempts; error; detail; counters } ->
    Json.Obj
      [ ("event", Json.String "quarantine");
        ("job", Json.String job);
        ("attempts", Json.Int attempts);
        ("error", Json.String error);
        ("detail", Json.String detail);
        ("counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]

let counters_field j =
  match Json.member "counters" j with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.int_value v))
      fields
  | _ -> []

let entry_of_json j =
  let str k = Option.bind (Json.member k j) Json.string_value in
  let int k = Option.bind (Json.member k j) Json.int_value in
  let float k = Option.bind (Json.member k j) Json.float_value in
  let ( let* ) o f =
    match o with Some v -> f v | None -> Error "missing or ill-typed field"
  in
  match str "event" with
  | Some "begin" ->
    let* jobs = int "jobs" in
    Ok (Begin { jobs })
  | Some "start" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    Ok (Start { job; attempt })
  | Some "retry" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    let* error = str "error" in
    let* backoff_ms = int "backoff_ms" in
    Ok (Retry { job; attempt; error; backoff_ms })
  | Some "commit" ->
    let* job = str "job" in
    let* attempt = int "attempt" in
    let* status = str "status" in
    let* method_used = str "method" in
    let* distance = float "distance" in
    let* status =
      match status with
      | "ok" -> Some `Ok
      | "degraded" -> Some `Degraded
      | _ -> None
    in
    (* Journals written before telemetry landed lack these two fields;
       read them as zero so old runs still resume. *)
    let wall_ms = Option.value (float "wall_ms") ~default:0.0 in
    let counters = counters_field j in
    Ok (Commit { job; attempt; status; method_used; distance; wall_ms; counters })
  | Some "quarantine" ->
    let* job = str "job" in
    let* attempts = int "attempts" in
    let* error = str "error" in
    let* detail = str "detail" in
    let counters = counters_field j in
    Ok (Quarantine { job; attempts; error; detail; counters })
  | Some other -> Error (Printf.sprintf "unknown event %S" other)
  | None -> Error "record has no \"event\" field"

let is_terminal = function
  | Begin _ | Commit _ | Quarantine _ -> true
  | Start _ | Retry _ -> false

(* ---------- appending ---------- *)

type writer = { fd : Unix.file_descr; path : string }

let io_err path fmt =
  Fmt.kstr
    (fun detail -> Repair_error.raise_error (Io { file = path; detail }))
    fmt

let open_append path =
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 with
  | fd -> { fd; path }
  | exception Unix.Unix_error (e, _, _) ->
    io_err path "%s" (Unix.error_message e)

let append w entry =
  let line = Json.to_string (entry_to_json entry) ^ "\n" in
  let bytes = Bytes.unsafe_of_string line in
  let n = Bytes.length bytes in
  let rec write_all off =
    if off < n then
      match Unix.write w.fd bytes off (n - off) with
      | written -> write_all (off + written)
      | exception Unix.Unix_error (e, _, _) ->
        io_err w.path "%s" (Unix.error_message e)
  in
  write_all 0;
  try Unix.fsync w.fd
  with Unix.Unix_error (e, _, _) -> io_err w.path "%s" (Unix.error_message e)

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()

(* ---------- recovery ---------- *)

type recovery = {
  entries : entry list;
  committed : (string * entry) list;
  truncated : bool;
}

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with Sys_error m -> Repair_error.raise_error (Io { file = path; detail = m })

let recover path =
  if not (Sys.file_exists path) then
    { entries = []; committed = []; truncated = false }
  else begin
    let text = read_file path in
    let len = String.length text in
    (* Walk line by line, remembering the byte offset just past the last
       terminal record: that is the committed prefix. Stop at the first
       line that is torn (no '\n') or fails to parse. *)
    let committed_end = ref 0 in
    let committed_entries = ref [] in
    let pending = ref [] in
    let pos = ref 0 in
    (try
       while !pos < len do
         match String.index_from_opt text !pos '\n' with
         | None -> raise Exit (* torn tail: crash mid-write *)
         | Some nl ->
           let line = String.sub text !pos (nl - !pos) in
           (match
              Result.bind (Json.of_string line) (fun j ->
                  Result.map_error
                    (fun m -> m)
                    (entry_of_json j))
            with
           | Error _ -> raise Exit
           | Ok e ->
             pending := e :: !pending;
             if is_terminal e then begin
               committed_end := nl + 1;
               committed_entries := !pending @ !committed_entries;
               pending := []
             end);
           pos := nl + 1
       done
     with Exit -> ());
    let truncated = !committed_end < len in
    if truncated then Unix.truncate path !committed_end;
    let entries = List.rev !committed_entries in
    let committed =
      List.filter_map
        (function
          | (Commit { job; _ } | Quarantine { job; _ }) as e -> Some (job, e)
          | Begin _ | Start _ | Retry _ -> None)
        entries
    in
    { entries; committed; truncated }
  end
