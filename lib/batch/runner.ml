module Budget = Repair_runtime.Budget
module Repair_error = Repair_runtime.Repair_error
module Pool = Repair_par.Pool
module Metrics = Repair_obs.Metrics
module Histogram = Repair_obs.Histogram
module Json = Repair_obs.Json

type outcome = {
  status : [ `Ok | `Degraded ];
  distance : float;
  method_used : string;
}

type state =
  | Committed of outcome
  | Quarantined of {
      error : string;
      detail : string;
      counters : (string * int) list;
    }

type job_result = {
  job : Manifest.job;
  attempts : int;
  replayed : bool;
  wall_ms : float;
  state : state;
}

type summary = {
  total : int;
  ok : int;
  degraded : int;
  quarantined : int;
  retried : int;
  replayed : int;
  results : job_result list;
  latency : Histogram.t;
  latency_by_method : (string * Histogram.t) list;
}

let exit_some_quarantined = 9

(* Transient failures are worth retrying: a timeout may pass on a quieter
   machine, an injected fault is one-shot by construction. Everything
   else (bad input, wrong schema, intractability, size gates, unexpected
   exceptions) is deterministic — retrying cannot help. *)
let classify = function
  | Repair_error.Error e ->
    let transient =
      match e with
      | Repair_error.Budget_exhausted _ | Repair_error.Fault_injected _ ->
        true
      | _ -> false
    in
    (Repair_error.class_name e, Repair_error.to_string e, transient)
  | exn -> ("internal", Printexc.to_string exn, false)

(* Counter deltas since [before]; counters are monotone, so a plain
   subtraction per name is the per-job contribution. *)
let counters_delta ~before after =
  List.filter_map
    (fun (name, v) ->
      let prior =
        match List.assoc_opt name before with Some p -> p | None -> 0
      in
      if v > prior then Some (name, v - prior) else None)
    after

let run ?pool ?(retries = 0) ?(backoff_ms = 0) ?(resume = false) ~exec
    ~journal manifest =
  if retries < 0 then invalid_arg "Runner.run: retries must be >= 0";
  if backoff_ms < 0 then invalid_arg "Runner.run: backoff_ms must be >= 0";
  let jobs = manifest.Manifest.jobs in
  if
    (not resume)
    && Sys.file_exists journal
    && (Unix.stat journal).st_size > 0
  then
    Repair_error.raise_error
      (Io
         {
           file = journal;
           detail = "journal exists; pass --resume to continue or delete it";
         });
  let recovery =
    if resume then Journal.recover journal
    else
      { Journal.entries = []; committed = []; truncated = false;
        format = `Framed }
  in
  (match recovery.entries with
  | Journal.Begin { jobs = n } :: _ when n <> List.length jobs ->
    Repair_error.raise_error
      (Schema_mismatch
         {
           source = journal;
           detail =
             Fmt.str "journal began with %d jobs; manifest has %d" n
               (List.length jobs);
         })
  | _ -> ());
  (* Resume appends in the journal's detected format so the file stays
     single-format and legacy resumes stay byte-compatible. *)
  let w = Journal.open_append ~format:recovery.format journal in
  Fun.protect ~finally:(fun () -> Journal.close w)
  @@ fun () ->
  Metrics.with_span "batch"
  @@ fun () ->
  (* A fresh unlimited budget: the runner's own checkpoints, phase
     "batch". Every tick sits just after a durable journal mutation, so a
     phase-"batch" fault simulates a crash between any two writes. *)
  let budget = Budget.unlimited () in
  let tick () = Budget.tick ~phase:"batch" budget in
  if recovery.entries = [] then
    Journal.append w (Journal.Begin { jobs = List.length jobs });
  tick ();
  (* Speculative parallel first attempts: with a pool, every
     not-yet-committed job's attempt 1 runs up front as a pool task —
     outcome and metrics captured per job, nothing merged, nothing
     written. The journal writer below then walks the manifest in order
     exactly as the sequential runner does, consuming each job's
     speculative result where attempt 1 would have run and merging its
     metrics capture at that same point, so the record sequence, the
     phase-"batch" checkpoint arithmetic, and every Commit counter delta
     are byte-identical to the sequential run. Retries (attempt >= 2)
     always run inline. The WAL caveat: speculative work predates its
     Start record, so a crash can discard compute the journal never saw
     — harmless, since resume re-executes exactly the uncommitted
     jobs. *)
  let speculative =
    match pool with
    | None -> fun _ -> None
    | Some pool ->
      let todo =
        List.filter
          (fun (j : Manifest.job) ->
            not (List.mem_assoc j.id recovery.committed))
          jobs
      in
      if List.length todo <= 1 then fun _ -> None
      else begin
        let task (job : Manifest.job) () =
          let ta = Unix.gettimeofday () in
          let outcome = Metrics.with_span job.id (fun () -> exec job) in
          (outcome, (Unix.gettimeofday () -. ta) *. 1000.0)
        in
        let results =
          Pool.run_captured pool (Array.of_list (List.map task todo))
        in
        let tbl = Hashtbl.create (List.length todo) in
        List.iteri
          (fun i (j : Manifest.job) -> Hashtbl.replace tbl j.id results.(i))
          todo;
        fun id -> Hashtbl.find_opt tbl id
      end
  in
  let retried = ref 0 in
  let run_job (job : Manifest.job) =
    tick ();
    (* checkpoint: about to start this job; nothing durable yet *)
    let t0 = Unix.gettimeofday () in
    let before = Metrics.counters () in
    let speculative = speculative job.id in
    let rec attempt k =
      Journal.append w (Journal.Start { job = job.id; attempt = k });
      tick ();
      (* checkpoint: the Start record is durable, the job is in flight *)
      let ta = Unix.gettimeofday () in
      let first_attempt () =
        match speculative with
        | Some (result, cap) when k = 1 ->
          (* Merge where the inline attempt would have recorded. *)
          Metrics.merge cap;
          (match result with
          | Ok (outcome, wall_ms) -> `Done (outcome, wall_ms)
          | Error exn -> `Raised exn)
        | _ -> (
          match Metrics.with_span job.id (fun () -> exec job) with
          | outcome ->
            `Done (outcome, (Unix.gettimeofday () -. ta) *. 1000.0)
          | exception exn -> `Raised exn)
      in
      match first_attempt () with
      | `Done (outcome, wall_ms) ->
        Journal.append w
          (Journal.Commit
             {
               job = job.id;
               attempt = k;
               status = outcome.status;
               method_used = outcome.method_used;
               distance = outcome.distance;
               wall_ms;
               counters = counters_delta ~before (Metrics.counters ());
             });
        tick ();
        (* checkpoint: the job is committed *)
        (k, Some wall_ms, Committed outcome)
      | `Raised exn ->
        let error, detail, transient = classify exn in
        if transient && k <= retries then begin
          let backoff = backoff_ms * (1 lsl (k - 1)) in
          Journal.append w
            (Journal.Retry
               { job = job.id; attempt = k; error; backoff_ms = backoff });
          incr retried;
          tick ();
          (* checkpoint: the failed attempt is on record *)
          if backoff > 0 then Unix.sleepf (float_of_int backoff /. 1000.0);
          attempt (k + 1)
        end
        else begin
          let counters = counters_delta ~before (Metrics.counters ()) in
          Journal.append w
            (Journal.Quarantine
               { job = job.id; attempts = k; error; detail; counters });
          tick ();
          (* checkpoint: the poison job is quarantined *)
          (k, None, Quarantined { error; detail; counters })
        end
    in
    let attempts, commit_wall_ms, state = attempt 1 in
    {
      job;
      attempts;
      replayed = false;
      (* Committed jobs report the committing attempt (what the journal
         records and the latency histograms aggregate); quarantined jobs
         report the whole losing fight, backoff included. *)
      wall_ms =
        (match commit_wall_ms with
        | Some ms -> ms
        | None -> (Unix.gettimeofday () -. t0) *. 1000.0);
      state;
    }
  in
  let results =
    List.map
      (fun (job : Manifest.job) ->
        match List.assoc_opt job.id recovery.committed with
        | Some (Journal.Commit { status; method_used; distance; wall_ms; _ })
          ->
          {
            job;
            attempts = 0;
            replayed = true;
            (* The journal remembers how long the committing attempt took,
               so a resumed run reports the same latency distribution as
               the uninterrupted one would have. *)
            wall_ms;
            state = Committed { status; distance; method_used };
          }
        | Some (Journal.Quarantine { error; detail; counters; _ }) ->
          {
            job;
            attempts = 0;
            replayed = true;
            wall_ms = 0.0;
            state = Quarantined { error; detail; counters };
          }
        | Some (Journal.Begin _ | Journal.Start _ | Journal.Retry _) ->
          assert false (* recovery.committed holds terminal records only *)
        | None -> run_job job)
      jobs
  in
  let count p = List.length (List.filter p results) in
  let latency = Histogram.create () in
  let by_method : (string, Histogram.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match r.state with
      | Committed { method_used; _ } ->
        let s = r.wall_ms /. 1000.0 in
        Histogram.observe latency s;
        let h =
          match Hashtbl.find_opt by_method method_used with
          | Some h -> h
          | None ->
            let h = Histogram.create () in
            Hashtbl.add by_method method_used h;
            h
        in
        Histogram.observe h s
      | Quarantined _ -> ())
    results;
  let latency_by_method =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) by_method []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    total = List.length results;
    ok =
      count (fun r ->
          match r.state with Committed { status = `Ok; _ } -> true | _ -> false);
    degraded =
      count (fun r ->
          match r.state with
          | Committed { status = `Degraded; _ } -> true
          | _ -> false);
    quarantined =
      count (fun r ->
          match r.state with Quarantined _ -> true | _ -> false);
    retried = !retried;
    replayed = count (fun r -> r.replayed);
    results;
    latency;
    latency_by_method;
  }

let job_json (r : job_result) =
  let base =
    [ ("id", Json.String r.job.Manifest.id);
      ( "status",
        Json.String
          (match r.state with
          | Committed { status = `Ok; _ } -> "ok"
          | Committed { status = `Degraded; _ } -> "degraded"
          | Quarantined _ -> "quarantined") );
      ("attempts", Json.Int r.attempts);
      ("replayed", Json.Bool r.replayed);
      ("wall_ms", Json.Float r.wall_ms) ]
  in
  let tail =
    match r.state with
    | Committed { distance; method_used; _ } ->
      [ ("distance", Json.Float distance);
        ("method", Json.String method_used) ]
    | Quarantined { error; _ } -> [ ("error", Json.String error) ]
  in
  Json.Obj (base @ tail)

let poison_json (r : job_result) =
  match r.state with
  | Quarantined { error; detail; counters } ->
    Some
      (Json.Obj
         [ ("id", Json.String r.job.Manifest.id);
           ("error", Json.String error);
           ("detail", Json.String detail);
           ( "counters",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) ) ])
  | Committed _ -> None

let summary_json ?wall_ms s =
  Json.Obj
    ([ ("total", Json.Int s.total);
       ("ok", Json.Int s.ok);
       ("degraded", Json.Int s.degraded);
       ("quarantined", Json.Int s.quarantined);
       ("retried", Json.Int s.retried);
       ("replayed", Json.Int s.replayed) ]
    @ (match wall_ms with
      | Some ms -> [ ("wall_ms", Json.Float ms) ]
      | None -> [])
    @ [ ("latency", Histogram.summary_json s.latency);
        ( "latency_by_method",
          Json.Obj
            (List.map
               (fun (m, h) -> (m, Histogram.summary_json h))
               s.latency_by_method) );
        ("jobs", Json.List (List.map job_json s.results));
        ("poison", Json.List (List.filter_map poison_json s.results)) ])
