(** The journaled batch runner: executes a {!Manifest.t} of repair jobs
    with per-job fault isolation, write-ahead journaling, checkpoint/
    resume, bounded retries, and poison-job quarantine.

    The runner is generic over the job executor, so the whole
    crash/retry/quarantine machinery is testable with a stub executor;
    the Driver-backed executor lives in [Repair.Batch] (lib/core), which
    is what the CLI uses.

    {2 Execution contract}

    Per job, in manifest order:
    + append a [Start] record (durable before the job runs);
    + run [exec job] — every [Repair_error.Error] and every other
      exception is caught and classified; nothing a job does can kill
      the batch;
    + on success, append the terminal [Commit] record;
    + on a {e transient} failure (budget exhaustion, injected fault)
      with attempts left, append a [Retry] record, sleep the
      deterministic exponential backoff [backoff_ms · 2^(attempt-1)],
      and go to 1;
    + on a permanent failure, or when the attempts are spent, append the
      terminal [Quarantine] record — the job is poison, the batch
      continues.

    {2 Checkpoints and crash-safety}

    The runner ticks a fresh unlimited {!Repair_runtime.Budget} under
    phase ["batch"] after the [Begin] header and after every journal
    append — i.e. at every point where the durable state just changed.
    Arming {!Repair_runtime.Fault} with [~phase:"batch"] therefore
    simulates a [kill -9] between any two journal writes: the raised
    error escapes [run] (runner checkpoints are outside the per-job
    isolation). A subsequent [run ~resume:true] recovers the journal
    ({!Journal.recover}), skips every job whose terminal record
    committed, replays in-flight jobs from attempt 1, and appends
    exactly the bytes the uninterrupted run would have — the
    kill-at-every-checkpoint matrix in [test/test_batch.ml] checks the
    final journals byte for byte.

    Faults armed {e without} a phase filter fire inside the solvers'
    own checkpoints instead and are handled as ordinary transient job
    failures — that is the per-job isolation at work. *)

type outcome = {
  status : [ `Ok | `Degraded ];
  distance : float;
  method_used : string;
}

type state =
  | Committed of outcome
  | Quarantined of {
      error : string;  (** [Repair_error.class_name], or ["internal"] *)
      detail : string;
      counters : (string * int) list;
          (** the job's metrics-counter deltas at the failing attempt
              (empty when metrics are disabled) *)
    }

type job_result = {
  job : Manifest.job;
  attempts : int;  (** attempts made in this run; 0 when [replayed] *)
  replayed : bool;  (** committed by a previous run; not executed here *)
  wall_ms : float;
      (** committed jobs: the committing attempt's duration — replayed
          jobs read it back from the journal's [Commit] record, so
          resumed runs report real latencies; quarantined jobs: the whole
          run across attempts, backoff included *)
  state : state;
}

type summary = {
  total : int;
  ok : int;
  degraded : int;
  quarantined : int;
  retried : int;  (** retry records written in this run *)
  replayed : int;  (** jobs skipped thanks to a prior commit *)
  results : job_result list;  (** manifest order *)
  latency : Repair_obs.Histogram.t;
      (** commit latencies of every committed job (executed and
          replayed); quarantined jobs are excluded *)
  latency_by_method : (string * Repair_obs.Histogram.t) list;
      (** the same, partitioned by [method_used], sorted by method *)
}

(** [run ?pool ?retries ?backoff_ms ?resume ~exec ~journal manifest]
    executes the manifest as described above. [retries] (default 0)
    bounds extra attempts after the first; [backoff_ms] (default 0) is
    the base of the exponential backoff. With [resume] (default
    [false]) an existing journal is recovered and committed jobs are
    skipped; without it, a non-empty journal is an [Io] error (refusing
    to silently mix runs).

    With a [pool], the first attempt of every not-yet-committed job runs
    speculatively in parallel (the WAL's per-job isolation makes this
    safe); the journal writer then walks the manifest in order,
    consuming the speculative outcomes and merging their metrics
    captures exactly where the inline attempts would have recorded.
    The journal bytes, checkpoint arithmetic, Commit counter deltas, and
    summary are identical to the sequential run (wall-clock fields
    aside); retries always run inline.

    When {!Repair_obs.Metrics} is enabled, the whole run executes inside
    a ["batch"] span with one child span per job id.

    @raise Repair_runtime.Repair_error.Error on journal I/O failures, on
    a journal/manifest mismatch, and on a phase-["batch"] injected fault
    (the simulated crash).
    @raise Invalid_argument on negative [retries] or [backoff_ms]. *)
val run :
  ?pool:Repair_par.Pool.t ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?resume:bool ->
  exec:(Manifest.job -> outcome) ->
  journal:string ->
  Manifest.t ->
  summary

(** [summary_json ?wall_ms s] renders the run summary (the CLI's stdout
    contract): totals, the [latency]/[latency_by_method] histograms
    ({!Repair_obs.Histogram.summary_json} — count, mean, min/max,
    p50/p90/p99, bucket counts), one record per job, and the [poison]
    list of quarantined jobs with error class, detail, and counter
    snapshot. *)
val summary_json : ?wall_ms:float -> summary -> Repair_obs.Json.t

(** Exit code of [repair-cli batch] when the run finished but some jobs
    were quarantined. *)
val exit_some_quarantined : int
