(* CRC-32 (IEEE 802.3, polynomial 0xedb88320, reflected), the checksum
   behind framed journal records. Table-driven; the table is built once
   on first use. Results fit in 32 bits, returned as a non-negative
   [int] (OCaml ints are 63-bit on every platform we build for). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let crc = ref 0xffffffff in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

let to_hex c = Printf.sprintf "%08x" c

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
        s
    in
    if ok then Some (int_of_string ("0x" ^ s)) else None
