module Repair_error = Repair_runtime.Repair_error
module Json = Repair_obs.Json

type kind = S_repair | U_repair

type strategy = Auto | Poly | Exact | Approximate

type job = {
  id : string;
  input : string;
  fds : string;
  kind : kind;
  strategy : strategy;
  timeout_s : float option;
  max_steps : int option;
  on_budget : [ `Degrade | `Fail ];
  output : string option;
}

type t = { jobs : job list }

let parse_string ?(file = "<manifest>") text =
  let err fmt =
    Fmt.kstr
      (fun detail ->
        Repair_error.raise_error (Parse { source = file; line = None; detail }))
      fmt
  in
  let doc =
    match Json.of_string text with Ok doc -> doc | Error m -> err "%s" m
  in
  let jobs_json =
    match Option.bind (Json.member "jobs" doc) Json.list_value with
    | Some l -> l
    | None -> err "no \"jobs\" array"
  in
  if jobs_json = [] then err "empty job list";
  let parse_job i j =
    let str k = Option.bind (Json.member k j) Json.string_value in
    let id =
      match str "id" with
      | Some s when s <> "" -> s
      | Some _ | None -> err "job %d: missing \"id\"" (i + 1)
    in
    let required k =
      match str k with
      | Some s when s <> "" -> s
      | Some _ | None -> err "job %s: missing \"%s\"" id k
    in
    let enum k ~default of_string =
      match str k with
      | None -> default
      | Some s -> (
        match of_string s with
        | Some v -> v
        | None -> err "job %s: unknown %s %S" id k s)
    in
    {
      id;
      input = required "input";
      fds = required "fds";
      kind =
        enum "kind" ~default:S_repair (function
          | "s-repair" -> Some S_repair
          | "u-repair" -> Some U_repair
          | _ -> None);
      strategy =
        enum "strategy" ~default:Auto (function
          | "auto" -> Some Auto
          | "poly" -> Some Poly
          | "exact" -> Some Exact
          | "approx" -> Some Approximate
          | _ -> None);
      timeout_s = Option.bind (Json.member "timeout_s" j) Json.float_value;
      max_steps = Option.bind (Json.member "max_steps" j) Json.int_value;
      on_budget =
        enum "on-budget" ~default:`Degrade (function
          | "degrade" -> Some `Degrade
          | "fail" -> Some `Fail
          | _ -> None);
      output = str "output";
    }
  in
  let jobs = List.mapi parse_job jobs_json in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun jb ->
      if Hashtbl.mem seen jb.id then
        Repair_error.raise_error
          (Schema_mismatch
             { source = file; detail = "duplicate job id " ^ jb.id })
      else Hashtbl.add seen jb.id ())
    jobs;
  { jobs }

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with Sys_error m -> Repair_error.raise_error (Io { file = path; detail = m })

let load path = parse_string ~file:path (read_file path)

let load_result path = Repair_error.guard (fun () -> load path)
