(** Batch-job manifests: the input of the journaled work-queue runner.

    A manifest is a JSON document listing independent repair jobs —
    input table, FD set, repair notion, algorithm strategy, and per-job
    budget. The FD string and the input file are deliberately {e not}
    opened at manifest-parse time: a malformed FD set or a corrupt table
    belongs to that one job, and must surface as a per-job failure the
    runner can quarantine, not as a manifest error that kills the batch.

    {[
      { "jobs": [
          { "id": "office",
            "input": "office.csv",
            "fds": "facility -> city; facility room -> floor",
            "kind": "s-repair",
            "strategy": "auto",
            "max_steps": 10000,
            "timeout_s": 5.0,
            "on-budget": "degrade",
            "output": "office.repaired.csv" } ] }
    ]}

    [id], [input] and [fds] are required; everything else has the
    defaults shown in {!job}. Paths are resolved relative to the
    process working directory. *)

type kind =
  | S_repair  (** subset repair (deletions) *)
  | U_repair  (** update repair (cell changes) *)

type strategy = Auto | Poly | Exact | Approximate

type job = {
  id : string;  (** unique within the manifest; the journal key *)
  input : string;  (** CSV or JSONL table path (by file extension) *)
  fds : string;  (** FD set, [Fd_set.parse] syntax; parsed at exec time *)
  kind : kind;  (** default [S_repair] *)
  strategy : strategy;  (** default [Auto] *)
  timeout_s : float option;  (** per-job wall-clock budget *)
  max_steps : int option;  (** per-job deterministic step budget *)
  on_budget : [ `Degrade | `Fail ];
      (** [`Degrade] (default) commits a degraded result when the budget
          runs out; [`Fail] surfaces the exhaustion to the runner, which
          treats it as a transient, retryable failure. *)
  output : string option;  (** where to write the repaired table *)
}

type t = { jobs : job list }

(** [parse_string ?file text] parses a manifest.

    @raise Repair_runtime.Repair_error.Error with class [Parse] on
    malformed JSON, missing required fields, or unknown enum values, and
    class [Schema_mismatch] on duplicate job ids. *)
val parse_string : ?file:string -> string -> t

(** [load path] reads and parses a manifest file.
    @raise Repair_runtime.Repair_error.Error ([Io] on unreadable files,
    otherwise as {!parse_string}). *)
val load : string -> t

(** [load_result path] is {!load} with the error returned, not raised. *)
val load_result : string -> (t, Repair_runtime.Repair_error.t) result
