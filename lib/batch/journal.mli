(** The write-ahead journal behind the batch runner: an append-only
    file, one checksummed record per line, every append followed by
    [fsync].

    {2 Framing}

    A framed record is ['@' len ':' crc ':' payload '\n']: [len] is the
    decimal byte length of [payload], [crc] is the CRC-32 of [payload]
    as 8 lowercase hex digits, and [payload] is the compact JSON
    rendering of the entry (control characters escaped, so a payload
    never contains a raw newline). Journals written before framing are
    plain JSONL; the first byte of the file (['{'] vs ['@']) selects the
    format on recovery, and appends continue in the journal's existing
    format so a file is never mixed.

    {2 Record stream}

    A run writes, in order: one [Begin] header, then per job a [Start]
    record for each attempt, zero or more [Retry] records, and exactly one
    terminal record — [Commit] (the job produced a repair, possibly
    degraded) or [Quarantine] (the job is poison: it failed every attempt,
    or failed permanently). Terminal records are the {e commit points} of
    the protocol: a job whose terminal record reached the journal is never
    executed again.

    {2 Crash recovery}

    {!recover} implements standard WAL recovery: the valid prefix of the
    file is the longest run of well-formed records ending at [Begin] or at
    a terminal record. Anything after it — dangling [Start]/[Retry]
    records of an in-flight job, or a torn final record from a crash
    mid-write — is uncommitted and is truncated away, so a resumed run
    replays the in-flight job from its first attempt and appends exactly
    the bytes an uninterrupted run would have — {e up to the [wall_ms]
    field} of [Commit] records, the one place a journal records
    wall-clock time (per-job telemetry feeding the batch latency
    histograms). Everything else is a pure function of the manifest and
    the (deterministic) job outcomes, which is what lets the
    kill-at-every-checkpoint test demand byte-for-byte equality after
    normalising [wall_ms].

    Torn tail vs corruption: an interrupted append can only leave an
    {e incomplete} final chunk (no terminating newline), which is
    truncated exactly as above. A {e complete} record that fails the
    frame grammar, its CRC-32, or the JSON parse cannot be explained by
    a crash — it is damage. Recovery then stops at the last valid commit
    point, moves every byte past it to a [<journal>.corrupt] sidecar,
    truncates the journal to the trusted prefix, and raises the
    structured {!Repair_runtime.Repair_error.t}[.Corruption] class (CLI
    exit code 11) — it never replays past damage and never raises an
    unclassified exception. A subsequent resume recovers the trusted
    prefix cleanly and re-runs what was lost. *)

type entry =
  | Begin of { jobs : int }  (** batch header; pins the manifest job count *)
  | Start of { job : string; attempt : int }  (** attempt [attempt] began *)
  | Retry of { job : string; attempt : int; error : string; backoff_ms : int }
      (** attempt [attempt] failed transiently with error class [error];
          the runner backs off [backoff_ms] ms and tries again *)
  | Commit of {
      job : string;
      attempt : int;
      status : [ `Ok | `Degraded ];
      method_used : string;
      distance : float;
      wall_ms : float;
          (** wall-clock duration of the committing attempt; the only
              non-deterministic journal field. Read back as [0.0] from
              journals predating telemetry. *)
      counters : (string * int) list;
          (** the job's metrics-counter deltas (empty when metrics are
              off) *)
    }  (** terminal: the repair of attempt [attempt] is durable *)
  | Quarantine of {
      job : string;
      attempts : int;
      error : string;
      detail : string;
      counters : (string * int) list;
    }
      (** terminal: poison job — error class, human detail, and the
          job's metrics-counter deltas (empty when metrics are off) *)

val entry_to_json : entry -> Repair_obs.Json.t

val entry_of_json : Repair_obs.Json.t -> (entry, string) result

(** [is_terminal e] — is [e] a commit point ([Begin]/[Commit]/
    [Quarantine])? *)
val is_terminal : entry -> bool

(** {2 Appending} *)

(** Journal file format: [`Framed] (checksummed, length-prefixed — the
    format every new journal is written in) or [`Legacy] (plain JSONL,
    read and appended for journals that predate framing). *)
type format = [ `Framed | `Legacy ]

type writer

(** [open_append ?format ?sync path] opens (creating if needed) the
    journal for appending. [format] defaults to [`Framed]; when resuming,
    pass the {!recovery}'s [format] so the file stays single-format.
    [sync] (default [true]) controls the per-append [fsync]; benchmarks
    disable it to isolate framing cost — durable runs never do.
    @raise Repair_runtime.Repair_error.Error ([Io]) on failure. *)
val open_append : ?format:format -> ?sync:bool -> string -> writer

(** [append w e] writes [e] as one framed (or legacy JSON) line and
    [fsync]s the file, so the record is durable before the call returns.
    All writes go through {!Repair_runtime.Io_fault}: short writes and
    [EINTR] (injected or genuine) are absorbed, other failures raise the
    classified [Io] error, and {!Repair_runtime.Io_fault.Crash}
    propagates raw.
    @raise Repair_runtime.Repair_error.Error ([Io]) on failure. *)
val append : writer -> entry -> unit

val close : writer -> unit

(** {2 Recovery} *)

type recovery = {
  entries : entry list;  (** the valid committed prefix, in file order *)
  committed : (string * entry) list;
      (** job id → its terminal [Commit]/[Quarantine] record *)
  truncated : bool;  (** an uncommitted tail was discarded *)
  format : format;
      (** detected file format; feed back into {!open_append} on resume.
          Empty or missing journals report [`Framed]. *)
}

(** [corrupt_sidecar path] is the sidecar file ([path ^ ".corrupt"])
    where recovery quarantines damaged bytes. *)
val corrupt_sidecar : string -> string

(** [recover path] scans the journal, truncates the file to its valid
    committed prefix (see above), and returns what survived. A missing
    file is an empty journal.
    @raise Repair_runtime.Repair_error.Error ([Io]) on filesystem
    failure, and ([Corruption]) when a complete record fails validation
    mid-file — in which case the damaged suffix has been moved to
    {!corrupt_sidecar} and the journal truncated to its trusted
    prefix. *)
val recover : string -> recovery
