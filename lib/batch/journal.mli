(** The write-ahead journal behind the batch runner: an append-only JSONL
    file, one record per line, every append followed by [fsync].

    {2 Record stream}

    A run writes, in order: one [Begin] header, then per job a [Start]
    record for each attempt, zero or more [Retry] records, and exactly one
    terminal record — [Commit] (the job produced a repair, possibly
    degraded) or [Quarantine] (the job is poison: it failed every attempt,
    or failed permanently). Terminal records are the {e commit points} of
    the protocol: a job whose terminal record reached the journal is never
    executed again.

    {2 Crash recovery}

    {!recover} implements standard WAL recovery: the valid prefix of the
    file is the longest run of well-formed lines ending at [Begin] or at a
    terminal record. Anything after it — dangling [Start]/[Retry] records
    of an in-flight job, or a torn final line from a crash mid-write — is
    uncommitted and is truncated away, so a resumed run replays the
    in-flight job from its first attempt and appends exactly the bytes an
    uninterrupted run would have — {e up to the [wall_ms] field} of
    [Commit] records, the one place a journal records wall-clock time
    (per-job telemetry feeding the batch latency histograms). Everything
    else is a pure function of the manifest and the (deterministic) job
    outcomes, which is what lets the kill-at-every-checkpoint test demand
    byte-for-byte equality after normalising [wall_ms]. *)

type entry =
  | Begin of { jobs : int }  (** batch header; pins the manifest job count *)
  | Start of { job : string; attempt : int }  (** attempt [attempt] began *)
  | Retry of { job : string; attempt : int; error : string; backoff_ms : int }
      (** attempt [attempt] failed transiently with error class [error];
          the runner backs off [backoff_ms] ms and tries again *)
  | Commit of {
      job : string;
      attempt : int;
      status : [ `Ok | `Degraded ];
      method_used : string;
      distance : float;
      wall_ms : float;
          (** wall-clock duration of the committing attempt; the only
              non-deterministic journal field. Read back as [0.0] from
              journals predating telemetry. *)
      counters : (string * int) list;
          (** the job's metrics-counter deltas (empty when metrics are
              off) *)
    }  (** terminal: the repair of attempt [attempt] is durable *)
  | Quarantine of {
      job : string;
      attempts : int;
      error : string;
      detail : string;
      counters : (string * int) list;
    }
      (** terminal: poison job — error class, human detail, and the
          job's metrics-counter deltas (empty when metrics are off) *)

val entry_to_json : entry -> Repair_obs.Json.t

val entry_of_json : Repair_obs.Json.t -> (entry, string) result

(** [is_terminal e] — is [e] a commit point ([Begin]/[Commit]/
    [Quarantine])? *)
val is_terminal : entry -> bool

(** {2 Appending} *)

type writer

(** [open_append path] opens (creating if needed) the journal for
    appending.
    @raise Repair_runtime.Repair_error.Error ([Io]) on failure. *)
val open_append : string -> writer

(** [append w e] writes [e] as one JSON line and [fsync]s the file, so the
    record is durable before the call returns.
    @raise Repair_runtime.Repair_error.Error ([Io]) on failure. *)
val append : writer -> entry -> unit

val close : writer -> unit

(** {2 Recovery} *)

type recovery = {
  entries : entry list;  (** the valid committed prefix, in file order *)
  committed : (string * entry) list;
      (** job id → its terminal [Commit]/[Quarantine] record *)
  truncated : bool;  (** an uncommitted tail was discarded *)
}

(** [recover path] scans the journal, truncates the file to its valid
    committed prefix (see above), and returns what survived. A missing
    file is an empty journal.
    @raise Repair_runtime.Repair_error.Error ([Io]) on filesystem
    failure. *)
val recover : string -> recovery
