(** CRC-32 (IEEE 802.3) over strings — the integrity check on framed
    journal records. *)

(** [string s] is the CRC-32 of [s], in [\[0, 2{^32})]. *)
val string : string -> int

(** [to_hex c] renders [c] as exactly 8 lowercase hex digits. *)
val to_hex : int -> string

(** [of_hex s] parses what {!to_hex} produces; [None] unless [s] is
    exactly 8 lowercase hex digits. *)
val of_hex : string -> int option
