(* compare — diff two BENCH_*.json files produced by bench/main.exe.

   Records are matched by their "name" field and compared on wall_ms.
   Records present in the baseline but missing from the new run are
   reported as vanished — a renamed or dropped experiment must not
   silently disappear from the regression gate. With --subset the new
   run is allowed to cover only part of the baseline (e.g. a --smoke
   run against the full-suite BENCH_1.json): vanished records are not
   an error, only the intersection is gated. Exit status: 0 when no
   regression exceeds the threshold and nothing vanished (unless
   --subset), 1 on a regression or a vanished record, 2 on unreadable
   input.

   Run with:  dune exec bench/compare.exe -- OLD.json NEW.json
              [--threshold PCT] [--min-ms MS] [--subset]  *)

module Json = Repair_core.Repair.Obs.Json

let usage =
  "usage: compare OLD.json NEW.json [--threshold PCT] [--min-ms MS] [--subset]"

let die_usage msg =
  Fmt.epr "compare: %s@.%s@." msg usage;
  exit 2

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> die_usage msg

let records_of path =
  match Json.of_string (read_file path) with
  | Error msg -> die_usage (Fmt.str "%s: %s" path msg)
  | Ok doc -> (
    match Option.bind (Json.member "records" doc) Json.list_value with
    | None -> die_usage (Fmt.str "%s: no \"records\" array" path)
    | Some rs ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "name" r) Json.string_value,
              Option.bind (Json.member "wall_ms" r) Json.float_value )
          with
          | Some name, Some ms -> Some (name, ms)
          | _ -> None)
        rs)

let () =
  let threshold = ref 25.0 in
  (* Records faster than this in both files are below timer noise; a 25%
     swing on a 50µs microbenchmark is not a regression signal. *)
  let min_ms = ref 0.5 in
  let subset = ref false in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--subset" :: rest ->
      subset := true;
      parse rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t > 0.0 -> threshold := t
      | _ -> die_usage "bad --threshold");
      parse rest
    | "--min-ms" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> min_ms := t
      | _ -> die_usage "bad --min-ms");
      parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      positional := arg :: !positional;
      parse rest
    | arg :: _ -> die_usage ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !positional with
    | [ a; b ] -> (a, b)
    | _ -> die_usage "expected exactly two files"
  in
  let old_records = records_of old_file and new_records = records_of new_file in
  let regressions = ref [] and improvements = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (name, new_ms) ->
      match List.assoc_opt name old_records with
      | None -> Fmt.pr "  new        %-50s %10.3f ms@." name new_ms
      | Some old_ms ->
        incr compared;
        if old_ms >= !min_ms || new_ms >= !min_ms then begin
          let pct = 100.0 *. ((new_ms /. old_ms) -. 1.0) in
          if pct > !threshold then
            regressions := (name, old_ms, new_ms, pct) :: !regressions
          else if pct < -. !threshold then
            improvements := (name, old_ms, new_ms, pct) :: !improvements
        end)
    new_records;
  let vanished =
    if !subset then []
    else
      List.filter
        (fun (name, _) -> List.assoc_opt name new_records = None)
        old_records
  in
  List.iter (fun (name, _) -> Fmt.pr "  vanished   %s@." name) vanished;
  let report verdict (name, old_ms, new_ms, pct) =
    Fmt.pr "  %-10s %-50s %10.3f ms → %10.3f ms  (%+.1f%%)@." verdict name
      old_ms new_ms pct
  in
  List.iter (report "FASTER") (List.rev !improvements);
  List.iter (report "REGRESSED") (List.rev !regressions);
  Fmt.pr "%d records compared (threshold %g%%, floor %g ms): %d regressed, \
          %d improved, %d vanished@."
    !compared !threshold !min_ms
    (List.length !regressions)
    (List.length !improvements)
    (List.length vanished);
  if !regressions <> [] || vanished <> [] then exit 1
