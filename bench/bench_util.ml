(* Shared benchmark plumbing: section banners, aligned tables, a thin
   wrapper over Bechamel's OLS pipeline returning ns/run per test, and the
   machine-readable record sink behind BENCH_*.json. *)

module Json = Repair_core.Repair.Obs.Json
module Metrics = Repair_core.Repair.Obs.Metrics

(* Float comparisons in experiment checks go through an epsilon, never
   (=): distances are sums of float weights and the experiments must not
   depend on association order. *)
let approx_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let section id title =
  Fmt.pr "@.%s@.%s  %s@.%s@." (String.make 78 '=') id title
    (String.make 78 '=')

let subsection title = Fmt.pr "@.--- %s@." title

let row fmt = Fmt.pr fmt

(* ---------- machine-readable benchmark records ---------- *)

let current_experiment = ref "startup"

let records : Json.t list ref = ref []

(* [record ~solver ~wall_ms] appends one structured measurement under the
   experiment currently running; [n]/[noise] describe the instance when
   the caller has one. *)
let record ?(n = 0) ?(noise = 0.0) ?(counters = []) ~solver ~wall_ms () =
  records :=
    Json.Obj
      [ ("name", Json.String (!current_experiment ^ "/" ^ solver));
        ("experiment", Json.String !current_experiment);
        ("solver", Json.String solver);
        ("n", Json.Int n);
        ("noise", Json.Float noise);
        ("wall_ms", Json.Float wall_ms);
        ("counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]
    :: !records

(* Median-of-N runs: with [set_runs n], every experiment body is executed
   [n] times and each emitted record keeps the median wall_ms across the
   repetitions (all other fields come from the first run). This makes the
   compare.ml regression gate far less sensitive to scheduler noise. *)
let runs = ref 1

let set_runs n =
  if n < 1 then invalid_arg "Bench_util.set_runs: need at least one run";
  runs := n

let median xs =
  let sorted = List.sort compare xs in
  let len = List.length sorted in
  let lo = List.nth sorted ((len - 1) / 2) and hi = List.nth sorted (len / 2) in
  (lo +. hi) /. 2.0

let field_of json key =
  match json with
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let with_wall_ms json v =
  match json with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, x) -> if k = "wall_ms" then (k, Json.Float v) else (k, x))
         fields)
  | other -> other

(* Records within one repetition are matched across repetitions by
   (name, occurrence index): experiments emit records in a deterministic
   order, and a name may legitimately recur (e.g. one record per sweep
   point under the same solver label). *)
let occurrence_keys recs =
  let seen = Hashtbl.create 16 in
  List.map
    (fun r ->
      let name =
        match field_of r "name" with Some (Json.String s) -> s | _ -> ""
      in
      let k = try Hashtbl.find seen name with Not_found -> 0 in
      Hashtbl.replace seen name (k + 1);
      (name, k))
    recs

(* Run one experiment with a fresh metrics registry; its wall-clock time
   and accumulated counters become the "<name>/harness" record. *)
let run_experiment name f =
  current_experiment := name;
  let outer = !records in
  let one () =
    records := [];
    Metrics.reset ();
    Metrics.enable ();
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    record ~counters:(Metrics.counters ()) ~solver:"harness" ~wall_ms ();
    List.rev !records (* chronological *)
  in
  let first = one () in
  let merged =
    if !runs = 1 then first
    else begin
      let walls = Hashtbl.create 64 in
      let stash recs =
        List.iter2
          (fun key r ->
            match field_of r "wall_ms" with
            | Some (Json.Float w) ->
              Hashtbl.replace walls key
                (w :: (try Hashtbl.find walls key with Not_found -> []))
            | _ -> ())
          (occurrence_keys recs) recs
      in
      stash first;
      for _ = 2 to !runs do
        stash (one ())
      done;
      List.map2
        (fun key r ->
          match Hashtbl.find_opt walls key with
          | Some ws -> with_wall_ms r (median ws)
          | None -> r)
        (occurrence_keys first) first
    end
  in
  records := List.rev_append merged outer

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let write_bench ~file () =
  let doc =
    Json.Obj
      [ ("schema_version", Json.Int 1);
        ("git", Json.String (git_describe ()));
        ("recorded_at_unix", Json.Float (Unix.gettimeofday ()));
        ("records", Json.List (List.rev !records)) ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.%d benchmark records → %s@." (List.length !records) file

(* Run a list of (label, thunk) under Bechamel; returns (label, ns/run). *)
let time_tests ?(quota = 0.3) ~name tests =
  let open Bechamel in
  let tests' =
    List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) tests
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests' in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let measured =
    List.filter_map
      (fun (label, _) ->
        let key = name ^ "/" ^ label in
        match Hashtbl.find_opt results key with
        | None -> None
        | Some r -> (
          match Analyze.OLS.estimates r with
          | Some (ns :: _) -> Some (label, ns)
          | _ -> None))
      tests
  in
  List.iter
    (fun (label, ns) ->
      record ~solver:(name ^ "/" ^ label) ~wall_ms:(ns /. 1e6) ())
    measured;
  measured

let pp_ns ppf ns =
  if ns >= 1e9 then Fmt.pf ppf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.pf ppf "%.2f µs" (ns /. 1e3)
  else Fmt.pf ppf "%.0f ns" ns

let failures = ref 0

let check label ok =
  if not ok then incr failures;
  Fmt.pr "  [%s] %s@." (if ok then "OK " else "BAD") label

(* Called once at the end of the harness: nonzero exit on any BAD check so
   the bench doubles as a reproduction gate in CI. *)
let finish () =
  if !failures = 0 then Fmt.pr "@.All experiments completed.@."
  else begin
    Fmt.pr "@.%d experiment check(s) FAILED.@." !failures;
    exit 1
  end

(* Aggregates over per-seed measurements. *)
let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
let maximum xs = List.fold_left max neg_infinity xs
