(* Benchmark harness: regenerates every table/figure-equivalent experiment
   of the paper (see DESIGN.md §4 for the experiment index E1-E15 and
   EXPERIMENTS.md for the paper-vs-measured record).

   Run with:  dune exec bench/main.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
open Bench_util
module D = R.Workload.Datasets
module Gen_table = R.Workload.Gen_table
module Gen_fd = R.Workload.Gen_fd
module Rng = R.Workload.Rng
module Simplify = R.Dichotomy.Simplify
module Classify = R.Dichotomy.Classify

let seeds n = List.init n (fun i -> 1000 + (17 * i))

let dirty rng schema d ~n ~noise ~dom =
  Gen_table.dirty rng schema d
    { Gen_table.default with n; noise; domain_size = dom }

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  section "E1" "Figure 1 / Example 2.3 — the running Office example";
  let t = D.office_table in
  row "  %-10s %-14s %-10s@." "object" "paper dist" "measured";
  List.iter
    (fun (name, expected, measured) ->
      row "  %-10s %-14g %-10g %s@." name expected measured
        (if approx_eq expected measured then "✓" else "✗"))
    [ ("S1", 2.0, Table.dist_sub D.office_s1 t);
      ("S2", 2.0, Table.dist_sub D.office_s2 t);
      ("S3", 3.0, Table.dist_sub D.office_s3 t);
      ("U1", 2.0, Table.dist_upd D.office_u1 t);
      ("U2", 3.0, Table.dist_upd D.office_u2 t);
      ("U3", 4.0, Table.dist_upd D.office_u3 t) ];
  let s = R.Srepair.Opt_s_repair.run_exn D.office_fds t in
  let u = R.Urepair.Opt_u_repair.solve_exn D.office_fds t in
  row "  optimal S-repair distance: %g (paper: 2; S1 and S2 optimal)@."
    (Table.dist_sub s t);
  row "  optimal U-repair distance: %g (paper: 2; U1 optimal)@."
    (Table.dist_upd u t);
  check "both optima equal 2"
    (approx_eq (Table.dist_sub s t) 2.0 && approx_eq (Table.dist_upd u t) 2.0)

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  section "E2" "Example 3.5 + Algorithm 2 — dichotomy classification";
  let sets =
    [ ("running Δ (office)", D.office_fds, true);
      ("Δ_A↔B→C", D.delta_a_b_c_marriage, true);
      ("Δ1 employee (ssn)", D.delta_ssn, true);
      ("Δ0 = {product→price, buyer→email}", D.delta0, false);
      ("Δ3 = {email→buyer, buyer→address}", D.delta3, false);
      ("Δ4 (S-tractable, U-hard)", D.delta4, true);
      ("{A→B, B→C}", D.delta_a_to_b_to_c, false);
      ("{A→B, C→D}", Fd_set.parse "A -> B; C -> D", false);
      ("passport (Ex 4.7)", D.delta_passport, true);
      ("zip (Ex 4.7)", D.delta_zip, false) ]
  in
  row "  %-38s %-14s %-14s %s@." "FD set" "paper S-side" "measured" "U-repair";
  List.iter
    (fun (name, d, paper_tractable) ->
      let measured = Simplify.succeeds d in
      let u_side =
        if R.Urepair.Opt_u_repair.tractable d then "P"
        else "not known P"
      in
      row "  %-38s %-14s %-14s %-12s %s@." name
        (if paper_tractable then "P" else "APX-complete")
        (if measured then "P" else "APX-complete")
        u_side
        (if measured = paper_tractable then "✓" else "✗"))
    sets;
  subsection "derivation trace for the running example (Example 3.5)";
  let _, trace = Simplify.run D.office_fds in
  Fmt.pr "%a" Simplify.pp_trace (D.office_fds, trace);
  subsection "derivation trace for the employee FD set";
  let _, trace = Simplify.run D.delta_ssn in
  Fmt.pr "%a" Simplify.pp_trace (D.delta_ssn, trace)

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  section "E3" "Table 1 — the four hard FD sets over R(A,B,C)";
  row "  %-16s %-12s %-8s %s@." "FD set" "OSRSucceeds" "class" "fact-wise source";
  List.iter
    (fun (name, d) ->
      match Classify.classify d with
      | `Tractable _ -> row "  %-16s TRACTABLE (✗ should be hard)@." name
      | `Hard (_, _, cert) ->
        row "  %-16s %-12s %-8d %s@." name "false"
          cert.Classify.cls
          (Classify.source_name cert.Classify.source))
    D.table1;
  subsection "five-class certificates for Example 3.8";
  List.iter
    (fun (n, _, d) ->
      let c = Classify.certify d in
      row "  Δ%d: expected class %d, measured %a@." n n
        Classify.pp_certificate c)
    D.class_examples

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  section "E4" "Theorem 3.2 — OptSRepair runs in polynomial time (scaling)";
  let sizes = [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000 ] in
  let make_input n =
    let rng = Rng.make (42 + n) in
    dirty rng D.office_schema D.office_fds ~n ~noise:0.05 ~dom:30
  in
  let inputs = List.map (fun n -> (n, make_input n)) sizes in
  let tests =
    List.map
      (fun (n, t) ->
        ( string_of_int n,
          fun () -> ignore (R.Srepair.Opt_s_repair.run_exn D.office_fds t) ))
      inputs
  in
  let results = time_tests ~name:"optsrepair" tests in
  row "  %-8s %-12s %s@." "n" "time/run" "time per tuple";
  List.iter
    (fun (label, ns) ->
      let n = float_of_string label in
      row "  %-8s %-12s %s@." label (Fmt.str "%a" pp_ns ns) (Fmt.str "%a" pp_ns (ns /. n)))
    results;
  (match (results, List.rev results) with
  | (_, t0) :: _, (_, t3) :: _ ->
    let blowup = t3 /. t0 and size_ratio = 32.0 in
    row "  32× data → %.1f× time (paper: polynomial; near-linear expected)@."
      blowup;
    check "scaling is sub-quadratic" (blowup < size_ratio *. size_ratio)
  | _ -> ())

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  section "E5" "Proposition 3.3 — quality of the 2-approximation";
  let d = D.delta_a_to_b_to_c in
  row "  %-6s %-10s %-10s %-8s@." "n" "mean rat" "max rat" "bound";
  List.iter
    (fun n ->
      let ratios =
        List.map
          (fun seed ->
            let rng = Rng.make seed in
            let t = dirty rng D.r3_schema d ~n ~noise:0.25 ~dom:4 in
            let apx = R.Srepair.S_approx.distance d t in
            let opt = R.Srepair.S_exact.distance d t in
            if opt = 0.0 then 1.0 else apx /. opt)
          (seeds 5)
      in
      row "  %-6d %-10.3f %-10.3f %-8g %s@." n (mean ratios) (maximum ratios)
        2.0
        (if maximum ratios <= 2.0 +. 1e-9 then "✓" else "✗"))
    [ 20; 40; 60 ];
  (* Throughput at scale, where exact solving is hopeless. *)
  let rng = Rng.make 7 in
  let big = dirty rng D.r3_schema d ~n:2_000 ~noise:0.05 ~dom:40 in
  let results =
    time_tests ~name:"approx2"
      [ ("n=2000", fun () -> ignore (R.Srepair.S_approx.approx2 d big)) ]
  in
  List.iter (fun (l, ns) -> row "  throughput %s: %a@." l pp_ns ns) results

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  section "E6" "Theorem 3.10 — MPD solved through the S-repair reduction";
  let schema = Schema.make "R" [ "A"; "B" ] in
  let d = Fd_set.parse "A -> B" in
  let diffs =
    List.map
      (fun seed ->
        let rng = Rng.make seed in
        let tbl = ref (Table.empty schema) in
        for _ = 1 to 12 do
          let p = 0.1 +. (0.09 *. float_of_int (Rng.in_range rng 0 9)) in
          tbl :=
            Table.add ~weight:p !tbl
              (Tuple.make [ Value.int (Rng.in_range rng 1 2);
                            Value.int (Rng.in_range rng 1 3) ])
        done;
        let pt = R.Mpd.Prob_table.of_table !tbl in
        match R.Mpd.Mpd.solve ~strategy:R.Mpd.Mpd.Poly d pt with
        | Ok (Some world) ->
          let bf = R.Mpd.Mpd.brute_force d pt in
          Float.abs
            (R.Mpd.Prob_table.log_probability pt world
            -. R.Mpd.Prob_table.log_probability pt bf)
        | Ok None -> 0.0
        | Error _ -> infinity)
      (seeds 10)
  in
  row "  10 random probabilistic tables (n=12), Δ = {A→B}@.";
  row "  max |log Pr(poly) − log Pr(brute force)| = %.2e@." (maximum diffs);
  check "reduction finds the most probable database" (maximum diffs < 1e-9)

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  section "E7" "Corollary 4.5 — dist_sub(S*) ≤ dist_upd(U*) ≤ mlc·dist_sub(S*)";
  let d = D.delta_a_to_b_to_c in
  let mlc = float_of_int (R.Fd.Lhs_analysis.mlc d) in
  let stats =
    List.filter_map
      (fun seed ->
        let rng = Rng.make seed in
        let t = dirty rng D.r3_schema d ~n:4 ~noise:0.4 ~dom:3 in
        let s = R.Srepair.S_exact.distance d t in
        let u = R.Urepair.U_exact.distance d t in
        if s = 0.0 then None else Some (s, u))
      (seeds 25)
  in
  let ok =
    List.for_all (fun (s, u) -> s <= u +. 1e-9 && u <= (mlc *. s) +. 1e-9) stats
  in
  let ratios = List.map (fun (s, u) -> u /. s) stats in
  row "  Δ = {A→B, B→C}, mlc = %g; %d dirty instances@." mlc (List.length stats);
  row "  measured dist_upd/dist_sub: mean %.3f, max %.3f (must lie in [1, %g])@."
    (mean ratios) (maximum ratios) mlc;
  check "sandwich inequality holds on every instance" ok

(* ------------------------------------------------------------ E8 / E9 *)

let e8_e9 () =
  section "E8" "Section 4.4, Δk — our Θ(k) ratio vs Kolahi–Lakshmanan Θ(k²)";
  row "  %-4s %-22s %-22s@." "k" "ours 2·mlc (paper 2(k+2))" "KL (MCI+2)(2MFS−1)";
  List.iter
    (fun k ->
      let _, dk = D.delta_k k in
      let ours = 2 * R.Fd.Lhs_analysis.mlc dk in
      let kl = R.Fd.Lhs_analysis.kl_ratio dk in
      row "  %-4d %-22d %-22d@." k ours kl)
    [ 1; 2; 3; 4; 5; 6 ];
  row "  shape: ours grows linearly, KL quadratically (paper §4.4) ✓@.";
  section "E9" "Section 4.4, Δ'k — our Θ(k) ratio vs KL constant";
  row "  %-4s %-26s %-20s@." "k" "ours 2·⌈(k+1)/2⌉·…" "KL (constant 9)";
  List.iter
    (fun k ->
      let _, dk' = D.delta'_k k in
      let ours = 2 * R.Fd.Lhs_analysis.mlc dk' in
      let kl = R.Fd.Lhs_analysis.kl_ratio dk' in
      row "  %-4d %-26d %-20d@." k ours kl)
    [ 1; 2; 3; 4; 5; 6 ];
  row "  shape: the gap reverses — the two approximations are incomparable ✓@."

(* ----------------------------------------------------------------- E10 *)

let e10 () =
  section "E10" "Theorem 4.12 — certified U-repair approximation quality";
  let d = D.delta_a_to_b_to_c in
  let certified = R.Urepair.U_approx.certified_ratio d in
  let ratios =
    List.filter_map
      (fun seed ->
        let rng = Rng.make seed in
        let t = dirty rng D.r3_schema d ~n:4 ~noise:0.4 ~dom:3 in
        let u, _ = R.Urepair.U_approx.best d t in
        let opt = R.Urepair.U_exact.distance d t in
        if opt = 0.0 then None else Some (Table.dist_upd u t /. opt))
      (seeds 25)
  in
  row "  Δ = {A→B, B→C}: certified ratio %g@." certified;
  row "  measured achieved/optimal: mean %.3f, max %.3f@." (mean ratios)
    (maximum ratios);
  check "never exceeds the certificate" (maximum ratios <= certified +. 1e-9);
  (* the combined algorithm (paper's closing remark of §4.4) *)
  let combined_better =
    let rng = Rng.make 123 in
    let t = dirty rng D.office_schema D.office_fds ~n:30 ~noise:0.2 ~dom:4 in
    let _, ratio = R.Urepair.U_approx.best D.office_fds t in
    ratio = 1.0
  in
  check "combined algorithm is exact on tractable components" combined_better

(* ----------------------------------------------------------------- E11 *)

let e11 () =
  section "E11" "Theorem 4.10 gadget — dist_upd(U*) = 2|E| + τ(G)";
  let module G = R.Graph.Graph in
  let module Vc = R.Graph.Vertex_cover in
  let module Vg = R.Reductions.Vc_gadget in
  row "  %-18s %-6s %-6s %-14s %-12s@." "graph" "|E|" "τ" "constructed" "2|E|+τ";
  let random_graph rng n p =
    let g = G.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.bernoulli rng p then G.add_edge g u v
      done
    done;
    g
  in
  let all_ok = ref true in
  List.iteri
    (fun i seed ->
      let rng = Rng.make seed in
      let g = random_graph rng 6 0.5 in
      let vg = Vg.of_graph g in
      let tau = List.length (Vc.exact g) in
      let u = Vg.update_of_cover vg (Vc.exact g) in
      let dist = Table.dist_upd u vg.Vg.table in
      let expected = Vg.expected_distance vg ~tau in
      if not (approx_eq dist expected) then all_ok := false;
      if i < 5 then
        row "  %-18s %-6d %-6d %-14g %-12g %s@."
          (Fmt.str "random #%d" (i + 1))
          (G.n_edges g) tau dist expected
          (if approx_eq dist expected then "✓" else "✗"))
    (seeds 10);
  check "construction achieves 2|E|+τ on all 10 random graphs" !all_ok;
  (* lower bound on small graphs via exhaustive search *)
  let p3 = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let vg = Vg.of_graph p3 in
  let exact = R.Urepair.U_exact.distance ~max_cells:24 vg.Vg.fds vg.Vg.table in
  row "  P3 path: exhaustive optimal U-distance = %g (expected 2·2+1 = 5)@."
    exact;
  check "exhaustive optimum matches on P3" (approx_eq exact 5.0)

(* ----------------------------------------------------------------- E12 *)

let e12 () =
  section "E12" "Appendix A gadgets — SAT and triangle-packing reductions";
  let module Sat = R.Sat in
  let module Sg = R.Reductions.Sat_gadget in
  let rand_2cnf rng n_vars n_clauses =
    let clause () =
      let x = Rng.int rng n_vars in
      let y = (x + 1 + Rng.int rng (n_vars - 1)) mod n_vars in
      [ (if Rng.bool rng then Sat.Cnf.pos x else Sat.Cnf.neg x);
        (if Rng.bool rng then Sat.Cnf.pos y else Sat.Cnf.neg y) ]
    in
    Sat.Cnf.make ~n_vars (List.init n_clauses (fun _ -> clause ()))
  in
  let check_gadget name build formulas =
    let ok =
      List.for_all
        (fun f ->
          let _, maxsat = Sat.Max_sat.exact f in
          let (g : Sg.t) = build f in
          let opt = R.Srepair.S_exact.optimal g.Sg.fds g.Sg.table in
          Table.size g.Sg.table - Table.size opt
          = Sat.Cnf.n_clauses f * 2 - maxsat
          || Table.size opt = maxsat)
        formulas
    in
    check (name ^ ": optimal kept tuples = max satisfiable clauses") ok
  in
  let formulas =
    List.map (fun seed -> rand_2cnf (Rng.make seed) 4 6) (seeds 15)
  in
  check_gadget "Δ_A→B→C (MAX-2-SAT)" Sg.of_2cnf_chain formulas;
  check_gadget "Δ_A→C←B (MAX-2-SAT)" Sg.of_2cnf_fork formulas;
  let non_mixed =
    List.map
      (fun seed ->
        let rng = Rng.make seed in
        let clause () =
          let pol = Rng.bool rng in
          List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng 4)
          |> List.sort_uniq compare
          |> List.map (fun v -> if pol then Sat.Cnf.pos v else Sat.Cnf.neg v)
        in
        Sat.Cnf.make ~n_vars:4 (List.init 6 (fun _ -> clause ())))
      (seeds 15)
  in
  check_gadget "Δ_AB→C→B (MAX-non-mixed-SAT)" Sg.of_non_mixed non_mixed;
  (* triangle packing *)
  let module Tg = R.Reductions.Triangle_gadget in
  let module Tr = R.Graph.Triangle in
  let k222 =
    Tr.tripartite_of_parts 2 2 2
      [ (0,2);(0,3);(1,2);(1,3);(0,4);(0,5);(1,4);(1,5);(2,4);(2,5);(3,4);(3,5) ]
  in
  let gadget = Tg.of_tripartite k222 in
  let packing = Tr.max_packing k222 in
  let opt = R.Srepair.S_exact.optimal gadget.Tg.fds gadget.Tg.table in
  row "  K_2,2,2: %d triangles, max edge-disjoint packing %d, optimal kept %d@."
    (Array.length gadget.Tg.triangles)
    (List.length packing) (Table.size opt);
  check "Δ_AB↔AC↔BC gadget matches the packing number"
    (Table.size opt = List.length packing)

(* ----------------------------------------------------------------- E13 *)

let e13 () =
  section "E13" "Theorems 4.1/4.3 — decomposition and consensus elimination";
  let schema = Schema.make "R" [ "A"; "B"; "C"; "D" ] in
  let d = Fd_set.parse "A -> B; C -> D" in
  let ok =
    List.for_all
      (fun seed ->
        let rng = Rng.make seed in
        let t = dirty rng schema d ~n:4 ~noise:0.4 ~dom:3 in
        let whole = Result.get_ok (R.Urepair.Opt_u_repair.distance d t) in
        let part1 =
          Result.get_ok
            (R.Urepair.Opt_u_repair.distance (Fd_set.parse "A -> B") t)
        in
        let part2 =
          Result.get_ok
            (R.Urepair.Opt_u_repair.distance (Fd_set.parse "C -> D") t)
        in
        Float.abs (whole -. (part1 +. part2)) < 1e-9
        && Float.abs (whole -. R.Urepair.U_exact.distance ~max_cells:16 d t)
           < 1e-9)
      (seeds 15)
  in
  check "Δ = {A→B} ∪ {C→D}: whole = sum of parts = exhaustive optimum" ok;
  (* consensus elimination (Thm 4.3): {∅→B} ∪ {A→C} *)
  let d2 = Fd_set.parse "-> B; A -> C" in
  let ok2 =
    List.for_all
      (fun seed ->
        let rng = Rng.make seed in
        let t =
          Gen_table.uniform rng (Schema.make "R" [ "A"; "B"; "C" ])
            { Gen_table.default with n = 4; domain_size = 2 }
        in
        let poly = Result.get_ok (R.Urepair.Opt_u_repair.distance d2 t) in
        Float.abs (poly -. R.Urepair.U_exact.distance ~max_cells:12 d2 t)
        < 1e-9)
      (seeds 15)
  in
  check "consensus attributes eliminated optimally (majority vote)" ok2

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  section "E14" "Corollaries 3.6/4.8 — chain FD sets: both repairs in PTIME";
  let rng = Rng.make 2718 in
  let schema, d = Gen_fd.chain rng ~n_attrs:5 ~n_fds:3 in
  row "  chain Δ = %a@." Fd_set.pp d;
  check "OSRSucceeds" (Simplify.succeeds d);
  check "U-repair tractable" (R.Urepair.Opt_u_repair.tractable d);
  let sizes = [ 1_000; 4_000 ] in
  let inputs =
    List.map
      (fun n ->
        let rng = Rng.make (99 + n) in
        (n, dirty rng schema d ~n ~noise:0.05 ~dom:20))
      sizes
  in
  let tests =
    List.concat_map
      (fun (n, t) ->
        [ ( Fmt.str "S n=%d" n,
            fun () -> ignore (R.Srepair.Opt_s_repair.run_exn d t) );
          ( Fmt.str "U n=%d" n,
            fun () -> ignore (R.Urepair.Opt_u_repair.solve_exn d t) ) ])
      inputs
  in
  let results = time_tests ~name:"chain" tests in
  List.iter (fun (l, ns) -> row "  %-10s %a@." l pp_ns ns) results

(* ----------------------------------------------------------------- E15 *)

let e15 () =
  section "E15" "Proposition 4.9 — {A→B, B→A}: dist_upd(U*) = dist_sub(S*)";
  let schema, d = Gen_fd.two_unary () in
  let pairs =
    List.filter_map
      (fun seed ->
        let rng = Rng.make seed in
        let t = dirty rng schema d ~n:5 ~noise:0.4 ~dom:3 in
        let s = R.Srepair.S_exact.distance d t in
        let u = Result.get_ok (R.Urepair.Opt_u_repair.distance d t) in
        let u_exact = R.Urepair.U_exact.distance d t in
        if s = 0.0 then None else Some (s, u, u_exact))
      (seeds 20)
  in
  let ok =
    List.for_all
      (fun (s, u, ue) -> Float.abs (s -. u) < 1e-9 && Float.abs (u -. ue) < 1e-9)
      pairs
  in
  row "  %d dirty instances over {A→B, B→A}@." (List.length pairs);
  check "optimal update distance equals optimal subset distance" ok

(* ----------------------------------------------------------------- E16 *)

let e16 () =
  section "E16" "Ablations — design choices called out in DESIGN.md";
  (* (a) conflict-graph construction: grouped (output-sensitive) vs naive
     all-pairs. *)
  let rng = Rng.make 31 in
  let t = dirty rng D.office_schema D.office_fds ~n:2_000 ~noise:0.05 ~dom:30 in
  let results =
    time_tests ~name:"conflict-graph"
      [ ("grouped", fun () -> ignore (R.Srepair.Conflict_graph.build D.office_fds t));
        ("naive n²", fun () -> ignore (R.Srepair.Conflict_graph.build_naive D.office_fds t)) ]
  in
  subsection "conflict-graph construction, n = 2000 (office Δ)";
  List.iter (fun (l, ns) -> row "  %-10s %s@." l (Fmt.str "%a" pp_ns ns)) results;
  (match results with
  | [ (_, grouped); (_, naive) ] ->
    row "  speedup from lhs grouping: %.1f×@." (naive /. grouped);
    check "grouped construction is faster" (grouped < naive)
  | _ -> ());
  (* Same edges either way. *)
  let e1 = R.Srepair.Conflict_graph.(n_conflicts (build D.office_fds t)) in
  let e2 = R.Srepair.Conflict_graph.(n_conflicts (build_naive D.office_fds t)) in
  check "both constructions find the same conflicts" (e1 = e2);
  (* (b) branch-and-bound lower bound. *)
  let module G = R.Graph.Graph in
  let module Vc = R.Graph.Vertex_cover in
  let g = G.create 20 in
  let rng = Rng.make 77 in
  for u = 0 to 19 do
    for v = u + 1 to 19 do
      if Rng.bernoulli rng 0.25 then G.add_edge g u v
    done
  done;
  let results =
    time_tests ~name:"vc-exact"
      [ ("with matching bound", fun () -> ignore (Vc.exact g));
        ("without bound", fun () -> ignore (Vc.exact ~matching_bound:false g)) ]
  in
  subsection "exact vertex cover branch & bound, n = 20, p = 0.25";
  List.iter (fun (l, ns) -> row "  %-22s %s@." l (Fmt.str "%a" pp_ns ns)) results;
  check "bounded and unbounded agree"
    (approx_eq
       (Vc.cover_weight g (Vc.exact g))
       (Vc.cover_weight g (Vc.exact ~matching_bound:false g)));
  (* (c) Hungarian matching vs exhaustive search. *)
  let module Bm = R.Graph.Bipartite_matching in
  let rng = Rng.make 13 in
  let w = Array.init 7 (fun _ -> Array.init 7 (fun _ -> float_of_int (Rng.int rng 10))) in
  let results =
    time_tests ~name:"matching"
      [ ("hungarian 7×7", fun () -> ignore (Bm.solve w));
        ("brute force 7×7", fun () -> ignore (Bm.brute_force w)) ]
  in
  subsection "maximum-weight bipartite matching (MarriageRep substrate)";
  List.iter (fun (l, ns) -> row "  %-18s %s@." l (Fmt.str "%a" pp_ns ns)) results;
  check "identical optimum"
    (approx_eq (snd (Bm.solve w)) (snd (Bm.brute_force w)));
  (* (d) incremental consistency index vs pairwise scan when extending a
     subset to a maximal one. *)
  let rng = Rng.make 55 in
  let t2 = dirty rng D.office_schema D.office_fds ~n:1_500 ~noise:0.05 ~dom:25 in
  let empty = Table.empty D.office_schema in
  let naive_maximal () =
    let compatible acc tuple =
      Table.for_all
        (fun _ t -> Fd_set.pair_consistent D.office_fds D.office_schema tuple t)
        acc
    in
    Table.fold
      (fun i t w acc ->
        if compatible acc t then Table.add ~id:i ~weight:w acc t else acc)
      t2 empty
  in
  let results =
    time_tests ~name:"make-maximal"
      [ ("fd-index", fun () ->
            ignore (R.Srepair.S_check.make_maximal D.office_fds ~of_:t2 empty));
        ("pairwise scan", fun () -> ignore (naive_maximal ())) ]
  in
  subsection "extending ∅ to an S-repair, n = 1500 (office Δ)";
  List.iter (fun (l, ns) -> row "  %-16s %s@." l (Fmt.str "%a" pp_ns ns)) results;
  check "identical result"
    (Table.equal
       (R.Srepair.S_check.make_maximal D.office_fds ~of_:t2 empty)
       (naive_maximal ()))

(* ----------------------------------------------------------------- E17 *)

let e17 () =
  section "E17"
    "Extensions beyond the paper (Section 5 directions) — sanity at scale";
  (* (a) counting optimal S-repairs in polynomial time on a chain set. *)
  let rng = Rng.make 404 in
  let t = dirty rng D.office_schema D.office_fds ~n:10_000 ~noise:0.08 ~dom:40 in
  let t0 = Unix.gettimeofday () in
  let count = R.Enumerate.Count.optimal_s_repairs_exn D.office_fds t in
  let dt = Unix.gettimeofday () -. t0 in
  row "  optimal-repair count at n=10000 (chain Δ): %d optima in %.0f ms@."
    count (dt *. 1000.0);
  check "counted without enumeration" (count >= 1);
  (* (b) dirtiness estimation at scale on a hard Δ. *)
  let t2 = dirty rng D.r3_schema D.delta_a_to_b_to_c ~n:2_000 ~noise:0.1 ~dom:10 in
  let e = R.Cleaning.Dirtiness.estimate D.delta_a_to_b_to_c t2 in
  row "  dirtiness at n=2000 (hard Δ): deletions in [%g, %g], updates in [%g, %g]@."
    e.R.Cleaning.Dirtiness.deletions_lower e.R.Cleaning.Dirtiness.deletions_upper
    e.R.Cleaning.Dirtiness.updates_lower e.R.Cleaning.Dirtiness.updates_upper;
  check "intervals well-formed"
    (e.R.Cleaning.Dirtiness.deletions_lower
     <= e.R.Cleaning.Dirtiness.deletions_upper
    && e.R.Cleaning.Dirtiness.updates_lower
       <= e.R.Cleaning.Dirtiness.updates_upper);
  (* (c) the voting heuristic inside the combined approximation. *)
  let certified, _ = R.Urepair.U_approx.via_s_repair D.delta_a_to_b_to_c t2 in
  let combined, _ = R.Urepair.U_approx.best D.delta_a_to_b_to_c t2 in
  row "  combined U-approx at n=2000: certified-only %g vs combined %g@."
    (Table.dist_upd certified t2) (Table.dist_upd combined t2);
  check "combined never worse"
    (Table.dist_upd combined t2 <= Table.dist_upd certified t2 +. 1e-9)

(* ----------------------------------------------------------------- E18 *)

let e18 () =
  section "E18" "Batch-runner overhead — journal, fsync, and resume replay";
  let module B = R.Batch in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "repair_bench_e18_%d" (Unix.getpid ()))
    in
    Unix.mkdir d 0o755;
    d
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let rng = Rng.make 1818 in
  let n_jobs = 8 in
  let jobs =
    List.init n_jobs (fun i ->
        let t =
          dirty rng D.office_schema D.office_fds ~n:200 ~noise:0.1 ~dom:12
        in
        let input = Filename.concat dir (Printf.sprintf "job%d.csv" i) in
        Csv_io.save t input;
        {
          B.Manifest.id = Printf.sprintf "job%d" i;
          input;
          fds = "facility -> city; facility room -> floor";
          kind = B.Manifest.S_repair;
          strategy = B.Manifest.Auto;
          timeout_s = None;
          max_steps = None;
          on_budget = `Degrade;
          output = None;
        })
  in
  let manifest = { B.Manifest.jobs } in
  let journal = Filename.concat dir "journal.jsonl" in
  let t0 = Unix.gettimeofday () in
  let s = B.run ~journal manifest in
  let run_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  record ~n:n_jobs ~solver:"batch-runner" ~wall_ms:run_ms ();
  row "  %d jobs through the journaled runner: %.1f ms (%.2f ms/job)@."
    n_jobs run_ms (run_ms /. float_of_int n_jobs);
  check "every job committed" (s.B.Runner.ok = n_jobs);
  let t0 = Unix.gettimeofday () in
  let s' = B.run ~resume:true ~journal manifest in
  let resume_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  record ~n:n_jobs ~solver:"batch-resume" ~wall_ms:resume_ms ();
  row "  resume of the finished run (pure journal replay): %.1f ms@."
    resume_ms;
  check "resume replays everything, executes nothing"
    (s'.B.Runner.replayed = n_jobs && s'.B.Runner.ok = n_jobs)

(* ----------------------------------------------------------------- E19 *)

(* The observability contract (DESIGN.md §8/§10): instrumentation lives
   permanently in solver hot loops, so the disabled paths must cost one
   branch and zero allocations — measured with [Gc.allocated_bytes],
   which is deterministic, unlike a timing ratio. *)
let e19 () =
  section "E19" "Observability overhead — disabled instrumentation paths";
  let module M = R.Obs.Metrics in
  let module T = R.Obs.Trace in
  let iters = 1_000_000 in
  let budget = R.Runtime.Budget.unlimited () in
  let nothing () = () in
  let tick_loop () =
    for _ = 1 to iters do
      R.Runtime.Budget.tick ~phase:"e19" budget
    done
  in
  let span_loop () =
    for _ = 1 to iters do
      M.with_span "e19-span" nothing
    done
  in
  let incr_loop () =
    for _ = 1 to iters do
      M.incr "e19-counter"
    done
  in
  let alloc_of f =
    let a0 = Gc.allocated_bytes () in
    f ();
    Gc.allocated_bytes () -. a0
  in
  let time_of f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  (* run_experiment enables the registry; switch everything off to
     measure the disabled paths, re-enable before returning. *)
  M.disable ();
  T.disable ();
  let d_tick = alloc_of tick_loop in
  let d_span = alloc_of span_loop in
  let d_incr = alloc_of incr_loop in
  row "  disabled, %d iterations: tick %g B, with_span %g B, incr %g B@."
    iters d_tick d_span d_incr;
  (* Gc.allocated_bytes itself boxes a few floats per probe; anything
     beyond that slack means the hot path allocates. *)
  let slack = 256.0 in
  check "disabled tick is allocation-free" (d_tick <= slack);
  check "disabled with_span is allocation-free" (d_span <= slack);
  check "disabled incr is allocation-free" (d_incr <= slack);
  let off_ms = time_of tick_loop in
  record ~n:iters ~solver:"tick-disabled" ~wall_ms:off_ms ();
  M.enable ();
  M.reset ();
  (* First tick of a phase interns its counter name and creates the
     counter; after that the enabled path is allocation-free too. *)
  R.Runtime.Budget.tick ~phase:"e19" budget;
  let d_tick_on = alloc_of tick_loop in
  row "  metrics enabled (after warm-up): tick %g B@." d_tick_on;
  check "enabled tick hot path is allocation-free" (d_tick_on <= slack);
  let on_ms = time_of tick_loop in
  record ~n:iters ~solver:"tick-enabled" ~wall_ms:on_ms ();
  row "  %d ticks: disabled %.1f ms, metrics enabled %.1f ms@." iters off_ms
    on_ms

(* ----------------------------------------------------------------- E20 *)

(* Scaling sweep for the columnar table core: identical random instances
   are run through the frozen seed representation (bench/legacy.ml — the
   [Imap]-backed tables with per-group [Imap.filter] grouping and the
   Hashtbl-in-the-inner-loop conflict build) and through the live
   columnar path, across three workloads shaped like the library's hot
   paths:

   - chain:    common-lhs recursion skeleton — group_by on one attribute,
               then fold the groups back together with union;
   - marriage: group_by on a two-attribute key (the lhs-marriage block
               partition);
   - conflict: conflict-graph construction for one FD plus the VC
               2-approximation.

   In the full run the 100k sweep point asserts the ≥5× speedup the
   columnar rework was built for (chain and conflict workloads); the
   smoke subset keeps only the 1k point so CI can gate the records
   cheaply. *)
let e20_smoke = ref false

let e20 () =
  section "E20"
    "Columnar core scaling — legacy Imap representation vs id-slice views";
  let schema = Schema.make "Scale" [ "A"; "B"; "C" ] in
  let xa = Attr_set.of_list [ "A" ] in
  let xb = Attr_set.of_list [ "B" ] in
  let xab = Attr_set.of_list [ "A"; "B" ] in
  let fd_ab = Fd_set.of_list [ Fd.make xa xb ] in
  let sizes = if !e20_smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  (* (workload, n) -> legacy_ms /. columnar_ms, for the final checks *)
  let ratios = Hashtbl.create 16 in
  let sweep ~workload ~n ~legacy_ms ~columnar_ms =
    let ratio = legacy_ms /. columnar_ms in
    Hashtbl.replace ratios (workload, n) ratio;
    record ~n ~solver:(Printf.sprintf "%s-legacy/n=%d" workload n)
      ~wall_ms:legacy_ms ();
    record ~n ~solver:(Printf.sprintf "%s-columnar/n=%d" workload n)
      ~wall_ms:columnar_ms ();
    row "  %-10s n=%-7d legacy %10.2f ms   columnar %8.2f ms   %6.1fx@."
      workload n legacy_ms columnar_ms ratio
  in
  row "  %-10s %-9s %-20s %-19s %s@." "workload" "" "" "" "speedup";
  List.iter
    (fun n ->
      let rng = Rng.make (9000 + n) in
      (* chain/marriage instance: A has ~n/200-sized groups, B is a
         10-valued secondary key. *)
      let chain_tbl =
        Table.of_list schema
          (List.init n (fun i ->
               ( i + 1,
                 1.0,
                 Tuple.make
                   [ Value.int (Rng.in_range rng 1 (max 2 (n / 500)));
                     Value.int (Rng.in_range rng 1 10);
                     Value.int (Rng.in_range rng 1 10) ] )))
      in
      let chain_legacy = Legacy.of_table chain_tbl in
      (* conflict instance: ~40-tuple A-groups, B dirty in ~10% of rows
         so the conflict graph stays sparse while the grouping work
         scales with g·n. *)
      let conflict_tbl =
        Table.of_list schema
          (List.init n (fun i ->
               ( i + 1,
                 1.0,
                 Tuple.make
                   [ Value.int (Rng.in_range rng 1 (max 2 (n / 40)));
                     Value.int (if Rng.bernoulli rng 0.1 then 2 else 1);
                     Value.int (Rng.in_range rng 1 10) ] )))
      in
      let conflict_legacy = Legacy.of_table conflict_tbl in

      (* --- chain: group_by A then fold union --- *)
      let l_res, legacy_ms =
        time (fun () -> Legacy.chain_pass chain_legacy xa)
      in
      let c_res, columnar_ms =
        time (fun () ->
            Table.group_by chain_tbl xa
            |> List.fold_left
                 (fun acc (_, sub) -> Table.union acc sub)
                 (Table.empty schema))
      in
      check
        (Printf.sprintf "chain n=%d: columnar result matches legacy" n)
        (Table.size c_res = Legacy.size l_res
        && approx_eq (Table.total_weight c_res) (Legacy.total_weight l_res));
      sweep ~workload:"chain" ~n ~legacy_ms ~columnar_ms;

      (* --- marriage: group_by on the two-attribute key --- *)
      let l_groups, legacy_ms =
        time (fun () -> List.length (Legacy.group_by chain_legacy xab))
      in
      let c_groups, columnar_ms =
        time (fun () -> List.length (Table.group_by chain_tbl xab))
      in
      check
        (Printf.sprintf "marriage n=%d: same number of blocks" n)
        (l_groups = c_groups);
      sweep ~workload:"marriage" ~n ~legacy_ms ~columnar_ms;

      (* --- conflict: graph for A→B plus the VC 2-approximation --- *)
      let module G = R.Graph.Graph in
      let module Vc = R.Graph.Vertex_cover in
      let module Cg = R.Srepair.Conflict_graph in
      let (l_edges, l_cover), legacy_ms =
        time (fun () ->
            let g = Legacy.conflict_graph conflict_legacy ~lhs:xa ~rhs:xb in
            (G.n_edges g, Vc.cover_weight g (Vc.approx2 g)))
      in
      let (c_edges, c_cover), columnar_ms =
        time (fun () ->
            let cg = Cg.build fd_ab conflict_tbl in
            let g = Cg.graph cg in
            (G.n_edges g, Vc.cover_weight g (Vc.approx2 g)))
      in
      check
        (Printf.sprintf "conflict n=%d: same edges and same approx2 cover" n)
        (l_edges = c_edges && approx_eq l_cover c_cover);
      sweep ~workload:"conflict" ~n ~legacy_ms ~columnar_ms)
    sizes;
  if not !e20_smoke then begin
    let ratio_at workload n =
      try Hashtbl.find ratios (workload, n) with Not_found -> 0.0
    in
    check "chain speedup at 100k is at least 5x"
      (ratio_at "chain" 100_000 >= 5.0);
    check "conflict speedup at 100k is at least 5x"
      (ratio_at "conflict" 100_000 >= 5.0)
  end

(* ----------------------------------------------------------------- E21 *)

(* Sustained serving throughput and tail latency for the admission
   engine under the Driver-backed executor. No sockets here — the event
   loop's I/O is drilled by the cram test and ci.sh; this measures the
   serving core itself in two regimes:

   - steady: admit one request, execute it, repeat — the queue never
     reaches the degrade watermark, so nothing is downgraded or shed and
     the per-request latency histogram gives the service-time tail;
   - burst: slam the queue past both watermarks, then drain — the
     above-watermark admissions must come back degraded (downgraded to
     the approximation rung), the overflow must be shed with structured
     `overloaded` errors, and the accounting identity must balance. *)
let e21_smoke = ref false

let e21 () =
  section "E21" "Serving engine — sustained throughput and tail latency";
  let module Engine = R.Serve.Engine in
  let module Protocol = R.Serve.Protocol in
  let module Hist = R.Obs.Histogram in
  let module Json = R.Obs.Json in
  let n_requests = if !e21_smoke then 120 else 600 in
  let rng = Rng.make 42 in
  let fd_sets =
    List.init 3 (fun _ -> Gen_fd.random rng ~n_attrs:4 ~n_fds:2 ~max_lhs:2)
  in
  let render_fds d =
    Fd_set.to_list d
    |> List.map (fun fd ->
           String.concat " " (Attr_set.to_list (Fd.lhs fd))
           ^ " -> "
           ^ String.concat " " (Attr_set.to_list (Fd.rhs fd)))
    |> String.concat "; "
  in
  let request i =
    let schema, d = List.nth fd_sets (i mod List.length fd_sets) in
    let tbl =
      dirty rng schema d ~n:(if !e21_smoke then 20 else 40) ~noise:0.15 ~dom:8
    in
    let line =
      Protocol.request_line
        ~id:(Json.String (Printf.sprintf "b%d" i))
        ~op:Protocol.S_repair ~fds:(render_fds d)
        ~table:(Csv_io.to_string tbl) ()
    in
    String.trim line
  in
  let corpus = List.init n_requests request in
  let cache = R.Serve.make_cache () in
  let sessions = R.Serve.make_sessions () in
  let mutex = Mutex.create () in
  let exec ~conn ~degraded req =
    R.Serve.exec ~cache ~sessions ~mutex ~conn ~degraded
      ~budget:(R.Runtime.Budget.create ~timeout_s:5.0 ())
      req
  in
  (* --- steady regime: depth never reaches the watermark --- *)
  let engine =
    Engine.create
      { Engine.default_config with queue_capacity = 64; degrade_watermark = 32 }
  in
  let latency = Hist.create () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun line ->
      (match Engine.handle_line engine ~conn:0 ~quota_used:0 line with
      | `Enqueued -> ()
      | _ -> failwith "steady request not admitted");
      match Engine.take engine with
      | Some p ->
        let s0 = Unix.gettimeofday () in
        ignore (Engine.execute engine ~exec p);
        Hist.observe latency (Unix.gettimeofday () -. s0)
      | None -> failwith "steady queue empty")
    corpus;
  let steady_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let c = Engine.counters engine in
  let p50 = Hist.quantile latency 0.5 and p99 = Hist.quantile latency 0.99 in
  row "  steady: %d requests in %.1f ms (%.0f req/s)@." n_requests steady_ms
    (float_of_int n_requests /. (steady_ms /. 1000.0));
  row "  latency p50 %.3f ms, p99 %.3f ms (cache: %d hits, %d misses)@."
    (p50 *. 1000.0) (p99 *. 1000.0)
    (R.Serve.Cache.stats cache).R.Serve.Cache.hits
    (R.Serve.Cache.stats cache).R.Serve.Cache.misses;
  check "steady: everything completed, nothing degraded or shed"
    (c.Engine.completed = n_requests && c.Engine.degraded = 0
   && c.Engine.shed = 0);
  check "steady: p99 is finite and positive"
    (Float.is_finite p99 && p99 > 0.0);
  check "steady: accounting identity" (Engine.balanced engine);
  record ~n:n_requests ~solver:"steady" ~wall_ms:steady_ms ();
  record ~n:n_requests ~solver:"steady-p99" ~wall_ms:(p99 *. 1000.0) ();
  (* --- burst regime: past both watermarks, then drain --- *)
  let capacity = 32 and watermark = 16 in
  let burst_n = 40 in
  let engine =
    Engine.create
      { Engine.default_config with
        queue_capacity = capacity;
        degrade_watermark = watermark }
  in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i line ->
      if i < burst_n then
        ignore (Engine.handle_line engine ~conn:0 ~quota_used:0 line))
    corpus;
  let rec drain () =
    match Engine.take engine with
    | Some p ->
      ignore (Engine.execute engine ~exec p);
      drain ()
    | None -> ()
  in
  drain ();
  let burst_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let c = Engine.counters engine in
  row "  burst: %d at capacity %d/watermark %d -> %d admitted, %d degraded, \
       %d shed in %.1f ms@."
    burst_n capacity watermark c.Engine.admitted c.Engine.degraded
    c.Engine.shed burst_ms;
  check "burst: overflow shed with structured errors"
    (c.Engine.shed = burst_n - capacity);
  check "burst: above-watermark admissions degraded"
    (c.Engine.degraded = capacity - watermark);
  check "burst: accepted requests all completed"
    (c.Engine.completed = c.Engine.admitted);
  check "burst: accounting identity" (Engine.balanced engine);
  record ~n:burst_n ~solver:"burst-drain" ~wall_ms:burst_ms ()

(* ----------------------------------------------------------------- E22 *)

(* Multicore scaling sweep for the domain-pool layer: the E20 workload
   shapes (chain grouping, two-attribute marriage grouping, conflict
   graph + VC approximation) run through the parallel entry points on
   pools of 1/2/4/8 domains, against the sequential single-domain
   baseline. Every width must produce bit-identical results — the pool
   buys wall-clock only. The ≥2.5× target at 4 domains (conflict
   workload) is asserted only when the host actually has ≥4 cores
   ([Domain.recommended_domain_count]); the ratio is recorded either
   way, so single-core CI boxes keep the record without a vacuous
   failure. The smoke subset keeps the 2-domain point on the small
   instance so CI gates the records cheaply. *)
let e22_smoke = ref false

let e22 () =
  section "E22" "Domain-pool scaling — parallel hot loops vs sequential";
  let module Pool = R.Par.Pool in
  let module G = R.Graph.Graph in
  let module Vc = R.Graph.Vertex_cover in
  let module Cg = R.Srepair.Conflict_graph in
  let schema = Schema.make "Scale" [ "A"; "B"; "C" ] in
  let xa = Attr_set.of_list [ "A" ] in
  let xab = Attr_set.of_list [ "A"; "B" ] in
  let fd_ab = Fd_set.of_list [ Fd.make xa (Attr_set.of_list [ "B" ]) ] in
  let n = if !e22_smoke then 1_000 else 100_000 in
  let domain_counts = if !e22_smoke then [ 2 ] else [ 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let rng = Rng.make (9000 + n) in
  let chain_tbl =
    Table.of_list schema
      (List.init n (fun i ->
           ( i + 1,
             1.0,
             Tuple.make
               [ Value.int (Rng.in_range rng 1 (max 2 (n / 500)));
                 Value.int (Rng.in_range rng 1 10);
                 Value.int (Rng.in_range rng 1 10) ] )))
  in
  let conflict_tbl =
    Table.of_list schema
      (List.init n (fun i ->
           ( i + 1,
             1.0,
             Tuple.make
               [ Value.int (Rng.in_range rng 1 (max 2 (n / 40)));
                 Value.int (if Rng.bernoulli rng 0.1 then 2 else 1);
                 Value.int (Rng.in_range rng 1 10) ] )))
  in
  (* sequential baselines — and the reference results for bit-identity *)
  let chain_pass groups =
    List.fold_left (fun acc (_, sub) -> Table.union acc sub) (Table.empty schema)
      groups
  in
  let seq_chain, chain_seq_ms =
    time (fun () -> chain_pass (Table.group_by chain_tbl xa))
  in
  let seq_marriage, marriage_seq_ms =
    time (fun () -> Table.group_by chain_tbl xab)
  in
  let (seq_edges, seq_cover), conflict_seq_ms =
    time (fun () ->
        let g = Cg.graph (Cg.build fd_ab conflict_tbl) in
        (G.n_edges g, Vc.cover_weight g (Vc.approx2 g)))
  in
  record ~n ~solver:"chain-seq" ~wall_ms:chain_seq_ms ();
  record ~n ~solver:"marriage-seq" ~wall_ms:marriage_seq_ms ();
  record ~n ~solver:"conflict-seq" ~wall_ms:conflict_seq_ms ();
  row "  %d cores available; n=%d; sequential: chain %.2f ms, marriage \
       %.2f ms, conflict %.2f ms@."
    cores n chain_seq_ms marriage_seq_ms conflict_seq_ms;
  (* (workload, domains) -> seq_ms /. par_ms *)
  let ratios = Hashtbl.create 16 in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let runner = Pool.runner pool in
          let c_res, chain_ms =
            time (fun () -> chain_pass (Table.group_by_par runner chain_tbl xa))
          in
          check
            (Printf.sprintf "chain @%dd is bit-identical" domains)
            (Table.equal c_res seq_chain);
          let m_res, marriage_ms =
            time (fun () -> Table.group_by_par runner chain_tbl xab)
          in
          check
            (Printf.sprintf "marriage @%dd: same blocks in the same order"
               domains)
            (List.length m_res = List.length seq_marriage
            && List.for_all2
                 (fun (k1, t1) (k2, t2) ->
                   Tuple.equal k1 k2 && Table.equal t1 t2)
                 m_res seq_marriage);
          let (p_edges, p_cover), conflict_ms =
            time (fun () ->
                let g = Cg.graph (Cg.build_par runner fd_ab conflict_tbl) in
                (G.n_edges g, Vc.cover_weight g (Vc.approx2 g)))
          in
          check
            (Printf.sprintf "conflict @%dd: same edges, same cover" domains)
            (p_edges = seq_edges && approx_eq p_cover seq_cover);
          List.iter
            (fun (workload, seq_ms, par_ms) ->
              let ratio = seq_ms /. par_ms in
              Hashtbl.replace ratios (workload, domains) ratio;
              record ~n
                ~solver:(Printf.sprintf "%s-par/domains=%d" workload domains)
                ~wall_ms:par_ms ();
              row "  %-10s domains=%d   %8.2f ms   %5.2fx@." workload domains
                par_ms ratio)
            [ ("chain", chain_seq_ms, chain_ms);
              ("marriage", marriage_seq_ms, marriage_ms);
              ("conflict", conflict_seq_ms, conflict_ms) ]))
    domain_counts;
  if not !e22_smoke then begin
    let ratio =
      try Hashtbl.find ratios ("conflict", 4) with Not_found -> 0.0
    in
    if cores >= 4 then
      check "conflict speedup at 4 domains is at least 2.5x" (ratio >= 2.5)
    else
      row "  [skip] conflict @4d speedup gate: only %d core(s) available \
           (measured %.2fx, recorded)@."
        cores ratio
  end

(* ----------------------------------------------------------------- E23 *)

(* Durability tax of the checksummed WAL (DESIGN §14): every journal
   record now carries a '@len:crc32:' frame, paid on every append. Two
   gates. The fsync-disabled runs isolate the framing arithmetic (CRC-32
   + header rendering), gated in absolute terms: a few hundred
   nanoseconds per record in practice, bounded at 5 µs. The fsync'd runs
   measure the path durable appends actually take, where the sync
   dominates and framing must stay within 5% of legacy plain JSONL
   (plus a small absolute floor so the gate stays meaningful on
   millisecond denominators). *)
let e23_smoke = ref false

let e23 () =
  section "E23" "Journal framing overhead — checksummed records vs legacy JSONL";
  let module J = R.Batch.Journal in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "repair_bench_e23_%d" (Unix.getpid ()))
    in
    Unix.mkdir d 0o755;
    d
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let n = if !e23_smoke then 500 else 5_000 in
  let entries =
    List.init n (fun i ->
        J.Commit
          {
            job = Printf.sprintf "job%d" i;
            attempt = 1;
            status = `Ok;
            method_used = "bench";
            distance = float_of_int i;
            wall_ms = 0.0;
            counters = [ ("ticks", i) ];
          })
  in
  let time_once ~format ~sync ~count path =
    let todo = List.filteri (fun i _ -> i < count) entries in
    (try Sys.remove path with Sys_error _ -> ());
    let w = J.open_append ~format ~sync path in
    let t0 = Unix.gettimeofday () in
    List.iter (J.append w) todo;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    J.close w;
    ms
  in
  (* The two formats are timed in alternating passes (best-of-reps per
     side) so a noisy patch on a shared host hits both sides alike
     instead of biasing whichever format happened to run through it. *)
  let measure_pair ~sync ~reps ~count framed_path legacy_path =
    let bf = ref infinity and bl = ref infinity in
    for _ = 1 to reps do
      let f = time_once ~format:`Framed ~sync ~count framed_path in
      let l = time_once ~format:`Legacy ~sync ~count legacy_path in
      if f < !bf then bf := f;
      if l < !bl then bl := l
    done;
    (!bf, !bl)
  in
  let framed_path = Filename.concat dir "framed.jsonl" in
  let framed_ms, legacy_ms =
    measure_pair ~sync:false ~reps:5 ~count:n framed_path
      (Filename.concat dir "legacy.jsonl")
  in
  record ~n ~solver:"journal-append-framed" ~wall_ms:framed_ms ();
  record ~n ~solver:"journal-append-legacy" ~wall_ms:legacy_ms ();
  let per_append_us = (framed_ms -. legacy_ms) *. 1000.0 /. float_of_int n in
  row "  %d appends, no fsync: framed %.2f ms, legacy %.2f ms (framing \
       %+.2f us/record)@."
    n framed_ms legacy_ms per_append_us;
  check "recovery reads back every framed record"
    (List.length (J.recover framed_path).J.entries = n);
  check "framing arithmetic costs under 5 us per record"
    (per_append_us < 5.0);
  let nd = if !e23_smoke then 100 else 500 in
  let framed_sync_ms, legacy_sync_ms =
    measure_pair ~sync:true ~reps:3 ~count:nd
      (Filename.concat dir "framed-sync.jsonl")
      (Filename.concat dir "legacy-sync.jsonl")
  in
  record ~n:nd ~solver:"journal-append-framed-fsync" ~wall_ms:framed_sync_ms ();
  record ~n:nd ~solver:"journal-append-legacy-fsync" ~wall_ms:legacy_sync_ms ();
  row "  %d durable appends (fsync each): framed %.2f ms, legacy %.2f ms \
       (%+.1f%%)@."
    nd framed_sync_ms legacy_sync_ms
    ((framed_sync_ms /. legacy_sync_ms -. 1.0) *. 100.0);
  check "framing costs at most 5% on the durable append path"
    (framed_sync_ms <= (1.05 *. legacy_sync_ms) +. 5.0)

(* ----------------------------------------------------------------- E24 *)

(* Incremental streaming repair vs full recompute (DESIGN §16). The
   E20-shaped chain workload — one FD A → B over ~500-row A-groups — is
   churned at 0.1%: the delta tape alternates inserts of fresh ids with
   deletes of existing rows. The session ticks through the tape (each
   tick re-solves only the touched block) and one summary recombines the
   cached blocks; amortized per-update cost must sit ≥100× below a cold
   driver run on the materialized table, and the summary itself must be
   identical to that cold run. *)
let e24_smoke = ref false

let e24 () =
  section "E24"
    "Incremental streaming repair — per-update cost vs full recompute";
  let module Ss = R.Stream.Session in
  let module Delta = R.Stream.Delta in
  let schema = Schema.make "Streamed" [ "A"; "B"; "C" ] in
  let xa = Attr_set.of_list [ "A" ] and xb = Attr_set.of_list [ "B" ] in
  let d = Fd_set.of_list [ Fd.make xa xb ] in
  let n = if !e24_smoke then 10_000 else 100_000 in
  let churn = max 10 (n / 1_000) in
  let rng = Rng.make (9000 + n) in
  let random_values () =
    [ Value.int (Rng.in_range rng 1 (max 2 (n / 500)));
      Value.int (Rng.in_range rng 1 10); Value.int (Rng.in_range rng 1 10) ]
  in
  let tbl =
    Table.of_list schema
      (List.init n (fun i -> (i + 1, 1.0, Tuple.make (random_values ()))))
  in
  let deltas =
    List.init churn (fun k ->
        if k land 1 = 0 then
          Delta.Insert
            { id = Some (n + 1 + k); weight = 1.0; values = random_values () }
        else Delta.Delete { id = 1 + (k * 997 mod n) })
  in
  let session = Ss.create d tbl in
  (* Prime the block cache: the steady state being measured is a LIVE
     session — every block solved once, updates touching few of them. *)
  ignore (Ss.summary session);
  let t0 = Unix.gettimeofday () in
  List.iter (Ss.tick session) deltas;
  let s = Ss.summary session in
  let inc_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let per_update_ms = inc_ms /. float_of_int churn in
  let m = Ss.materialized session in
  let t1 = Unix.gettimeofday () in
  let cold =
    match R.Driver.s_repair_result d m with
    | Ok r -> r
    | Error _ -> failwith "E24: cold recompute failed"
  in
  let cold_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
  let speedup = cold_ms /. per_update_ms in
  record ~n ~solver:"stream-per-update" ~wall_ms:per_update_ms ();
  record ~n ~solver:"stream-full-recompute" ~wall_ms:cold_ms ();
  row
    "  n=%d churn=%d: incremental %.4f ms/update (tape %.1f ms), cold \
     recompute %.1f ms — %.0fx@."
    n churn per_update_ms inc_ms cold_ms speedup;
  check "incremental summary identical to cold recompute"
    (Table.equal s.Ss.result cold.R.Driver.result
    && s.Ss.distance = cold.R.Driver.distance
    && s.Ss.method_used = cold.R.Driver.method_used);
  if !e24_smoke then
    (* The smoke shape (20 A-groups, 10 deltas) dirties ~40% of the
       blocks, so the inherent ceiling is low; the real >=100x gate is
       the full-size point. *)
    check "streaming is >=5x cheaper per update (smoke point)"
      (speedup >= 5.0)
  else
    check "streaming is >=100x cheaper per update" (speedup >= 100.0)

(* ------------------------------------------------------------- runner *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8-E9", e8_e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21); ("E22", e22);
    ("E23", e23); ("E24", e24) ]

(* The --smoke subset: seconds-scale experiments that still cover both
   repair flavours, exact baselines, and the record-emission path. *)
let smoke_subset =
  [ "E1"; "E2"; "E3"; "E6"; "E7"; "E13"; "E15"; "E18"; "E19"; "E20"; "E21";
    "E22"; "E23"; "E24" ]

let () =
  let smoke = ref false and out = ref "BENCH_1.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--runs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some k when k >= 1 -> set_runs k
      | _ ->
        Fmt.epr "bench: --runs expects a positive integer, got %s@." n;
        exit 2);
      parse rest
    | arg :: _ ->
      Fmt.epr
        "bench: unknown argument %s (try --smoke, --out FILE, --runs N)@." arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  e20_smoke := !smoke;
  e21_smoke := !smoke;
  e22_smoke := !smoke;
  e23_smoke := !smoke;
  e24_smoke := !smoke;
  Fmt.pr
    "repair-bench — reproduction experiments for 'Computing Optimal Repairs \
     for Functional Dependencies' (PODS'18)%s@."
    (if !smoke then " [smoke subset]" else "");
  List.iter
    (fun (name, f) ->
      if (not !smoke) || List.mem name smoke_subset then run_experiment name f)
    experiments;
  write_bench ~file:!out ();
  finish ()
