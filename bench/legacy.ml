(* Frozen replica of the seed (pre-columnar) table representation, kept
   as the "before" baseline for the E20 scaling experiments. The seed
   stored a table as [row Imap.t]; [group_by] collected the distinct
   keys into a [Tmap] and then rebuilt a filtered copy of the whole map
   per group (O(g·n) work per grouping), and conflict-graph construction
   looked every tuple id up in a [Hashtbl] inside the innermost
   cross-product loop. None of this code is reachable from the library —
   it exists only so the benchmark can measure the representation the
   columnar core replaced, on identical inputs. *)

module R = Repair_core.Repair
open R.Relational
module G = R.Graph.Graph
module Imap = Map.Make (Int)

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type row = { tuple : Tuple.t; weight : float }
type t = { schema : Schema.t; rows : row Imap.t }

let of_table tbl =
  {
    schema = Table.schema tbl;
    rows =
      Table.fold
        (fun i tuple weight acc -> Imap.add i { tuple; weight } acc)
        tbl Imap.empty;
  }

let size m = Imap.cardinal m.rows

let group_by m x =
  let keys =
    Imap.fold
      (fun _ r acc -> Tmap.add (Tuple.project m.schema r.tuple x) () acc)
      m.rows Tmap.empty
  in
  Tmap.bindings keys
  |> List.map (fun (key, ()) ->
         let rows =
           Imap.filter
             (fun _ r ->
               Tuple.equal (Tuple.project m.schema r.tuple x) key)
             m.rows
         in
         (key, { m with rows }))

let union m1 m2 =
  {
    m1 with
    rows =
      Imap.union
        (fun i _ _ ->
          invalid_arg (Printf.sprintf "Legacy.union: identifier %d in both" i))
        m1.rows m2.rows;
  }

let ids m = List.map fst (Imap.bindings m.rows)

let total_weight m =
  Imap.fold (fun _ r acc -> acc +. r.weight) m.rows 0.0

(* The seed's common-lhs recursion skeleton: partition on the common lhs
   attribute and fold the per-group results back together with [union]
   (each per-group "solve" is the identity, isolating the grouping and
   union cost that Opt_s_repair pays at every recursion level). *)
let chain_pass m x =
  group_by m x
  |> List.fold_left
       (fun acc (_, sub) -> union acc sub)
       { m with rows = Imap.empty }

(* Seed conflict-graph construction for a single FD X→Y: group by X,
   subgroup by Y, then cross-product distinct subgroups resolving every
   tuple id through the id→vertex Hashtbl. *)
let conflict_graph m ~lhs ~rhs =
  let ids = Array.of_list (ids m) in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.map (fun i -> (Imap.find i m.rows).weight) ids in
  let graph = G.create_weighted weights in
  List.iter
    (fun (_, sub) ->
      let subgroups = group_by sub rhs in
      let id_lists = List.map (fun (_, s) -> List.map fst (Imap.bindings s.rows)) subgroups in
      let rec cross = function
        | [] -> ()
        | g1 :: rest ->
          List.iter
            (fun g2 ->
              List.iter
                (fun i ->
                  List.iter
                    (fun j ->
                      G.add_edge graph (Hashtbl.find index i)
                        (Hashtbl.find index j))
                    g2)
                g1)
            rest;
          cross rest
      in
      cross id_lists)
    (group_by m lhs);
  graph
